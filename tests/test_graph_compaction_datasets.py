"""Tests of compact materialization indices and the Table 3 dataset registry."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph import build_compaction_index, load_dataset
from repro.graph.datasets import DATASETS, dataset_names, get_dataset_stats, table3_rows


class TestCompactionIndex:
    def test_simple_example_from_figure7(self):
        # Edges of the paper's Figure 6(a)/7 example: message depends on
        # (source node, edge type); 7 edges share 5 unique pairs.
        src = np.array([1, 2, 5, 6, 6, 3, 3])
        etype = np.array([0, 0, 1, 1, 1, 2, 2])
        index = build_compaction_index(src, etype, num_etypes=3)
        assert index.num_edges == 7
        assert index.num_unique == 5
        assert index.compaction_ratio == pytest.approx(5 / 7)

    def test_expand_recovers_per_edge_rows(self, medium_graph):
        index = medium_graph.compaction
        compact_rows = np.random.default_rng(0).standard_normal((index.num_unique, 4))
        expanded = index.expand(compact_rows)
        assert expanded.shape == (medium_graph.num_edges, 4)
        for edge in range(0, medium_graph.num_edges, 97):
            np.testing.assert_allclose(expanded[edge], compact_rows[index.edge_to_unique[edge]])

    def test_unique_rows_sorted_by_etype_and_consistent(self, medium_graph):
        index = medium_graph.compaction
        index.validate()
        assert np.all(np.diff(index.unique_etype) >= 0)
        # Every (src, etype) pair maps to a unique row with exactly that pair.
        np.testing.assert_array_equal(index.unique_src[index.edge_to_unique], medium_graph.edge_src)
        np.testing.assert_array_equal(index.unique_etype[index.edge_to_unique], medium_graph.edge_type)

    def test_empty_graph_compaction(self):
        index = build_compaction_index(np.array([]), np.array([]), num_etypes=3)
        assert index.num_unique == 0
        assert index.compaction_ratio == 1.0

    def test_mismatched_arrays_rejected(self):
        with pytest.raises(ValueError):
            build_compaction_index(np.array([0, 1]), np.array([0]), 1)

    @given(st.integers(min_value=1, max_value=200), st.integers(min_value=1, max_value=6),
           st.integers(min_value=1, max_value=30))
    @settings(max_examples=30, deadline=None)
    def test_compaction_invariants_random(self, num_edges, num_etypes, num_nodes):
        rng = np.random.default_rng(num_edges * 7 + num_etypes)
        src = rng.integers(0, num_nodes, size=num_edges)
        etype = rng.integers(0, num_etypes, size=num_edges)
        index = build_compaction_index(src, etype, num_etypes)
        index.validate()
        assert index.num_unique <= num_edges
        assert index.num_unique >= len(np.unique(etype))
        assert 0 < index.compaction_ratio <= 1.0
        np.testing.assert_array_equal(index.unique_src[index.edge_to_unique], src)
        np.testing.assert_array_equal(index.unique_etype[index.edge_to_unique], etype)


class TestDatasets:
    def test_table3_contains_all_eight_datasets(self):
        assert set(dataset_names()) == {
            "aifb", "am", "bgs", "biokg", "fb15k", "mag", "mutag", "wikikg2",
        }
        rows = table3_rows()
        assert len(rows) == 8

    def test_published_statistics_match_table3(self):
        assert get_dataset_stats("aifb").num_node_types == 7
        assert get_dataset_stats("aifb").num_edge_types == 104
        assert get_dataset_stats("fb15k").num_node_types == 1
        assert get_dataset_stats("fb15k").num_edge_types == 474
        assert get_dataset_stats("mag").num_edges == 21_000_000
        assert get_dataset_stats("wikikg2").num_nodes == 2_500_000
        assert get_dataset_stats("am").compaction_ratio == pytest.approx(0.57)
        assert get_dataset_stats("fb15k").compaction_ratio == pytest.approx(0.26)

    def test_unknown_dataset_raises(self):
        with pytest.raises(KeyError):
            get_dataset_stats("cora")

    def test_relation_counts_sum_to_total(self):
        for name, stats in DATASETS.items():
            counts = stats.relation_edge_counts()
            assert counts.sum() == stats.num_edges
            assert len(counts) == stats.num_edge_types
            assert counts.min() >= 1
            node_counts = stats.node_type_counts()
            assert node_counts.sum() == stats.num_nodes
            assert len(node_counts) == stats.num_node_types

    def test_relation_counts_are_deterministic(self):
        a = get_dataset_stats("bgs").relation_edge_counts()
        b = get_dataset_stats("bgs").relation_edge_counts()
        np.testing.assert_array_equal(a, b)

    def test_load_dataset_scales_and_keeps_type_structure(self):
        graph = load_dataset("aifb", max_edges=5000)
        stats = get_dataset_stats("aifb")
        assert graph.num_node_types == stats.num_node_types
        assert graph.num_edge_types == stats.num_edge_types
        assert graph.num_edges <= 1.05 * 5000
        small = load_dataset("mag", max_edges=2000)
        assert small.num_edges <= 2100

    def test_load_dataset_is_cached_and_deterministic(self):
        a = load_dataset("mutag", max_edges=3000)
        b = load_dataset("mutag", max_edges=3000)
        assert a is b  # lru_cache

    def test_unique_pair_estimate_consistent_with_ratio(self):
        stats = get_dataset_stats("biokg")
        assert stats.num_unique_src_etype_pairs == int(round(stats.compaction_ratio * stats.num_edges))
        assert stats.average_degree == pytest.approx(stats.num_edges / stats.num_nodes)
