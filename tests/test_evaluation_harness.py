"""Tests of the evaluation harness that regenerates every table and figure."""

import pytest

from repro.evaluation import (
    WorkloadSpec,
    architectural_metrics,
    dimension_sweep,
    hector_kernel_breakdown,
    inference_time_breakdown,
    memory_footprint_study,
    optimization_speedups,
    programming_effort_metric,
    run_end_to_end,
    run_full_comparison,
    speedup_summary,
)
from repro.evaluation.optimizations import best_fixed_strategy
from repro.evaluation.reporting import format_table, geometric_mean, speedup
from repro.evaluation.sweep import sublinearity_ratios

SMALL_DATASETS = ["aifb", "mutag", "bgs", "fb15k"]


class TestWorkloadSpec:
    def test_from_dataset_and_graph_consistency(self, small_graph):
        full = WorkloadSpec.from_dataset("am")
        assert full.num_edges == 5_700_000
        assert full.compaction_ratio == pytest.approx(0.57, abs=0.01)
        scaled = WorkloadSpec.from_graph(small_graph, in_dim=8, out_dim=8)
        assert scaled.num_edges == small_graph.num_edges
        assert scaled.relation_edge_counts.sum() == small_graph.num_edges

    def test_with_dims(self):
        base = WorkloadSpec.from_dataset("aifb")
        wider = base.with_dims(128, 128)
        assert wider.in_dim == 128 and base.in_dim == 64


class TestReportingHelpers:
    def test_format_table_alignment_and_values(self):
        text = format_table([{"a": 1, "b": 2.5}, {"a": 10, "b": None}], title="T")
        assert "T" in text and "2.5" in text and "-" in text
        assert format_table([]) == "(empty)"

    def test_geometric_mean_and_speedup(self):
        assert geometric_mean([1.0, 4.0]) == pytest.approx(2.0)
        assert geometric_mean([]) == 0.0
        with pytest.raises(ValueError):
            geometric_mean([1.0, -1.0])
        assert speedup(10.0, 5.0) == 2.0
        assert speedup(None, 5.0) is None


class TestFigure8:
    def test_cell_contains_expected_systems(self):
        cell = run_end_to_end("rgcn", "aifb", training=False)
        assert {"DGL", "PyG", "Seastar", "Graphiler", "Hector (U)", "Hector (C+R)"} <= set(cell.estimates)
        assert cell.best_baseline_time() is not None
        assert cell.hector_speedup() > 1.0
        rows = cell.as_rows()
        assert len(rows) == len(cell.estimates)

    def test_training_cells_use_training_systems(self):
        cell = run_end_to_end("rgcn", "aifb", training=True)
        assert "HGL" in cell.estimates and "Graphiler" not in cell.estimates

    def test_hector_outperforms_best_baseline_on_small_datasets(self):
        for dataset in ("aifb", "mutag"):
            for model in ("rgcn", "rgat", "hgt"):
                cell = run_end_to_end(model, dataset, training=False)
                assert cell.hector_speedup("U") > 1.0, (model, dataset)

    def test_full_comparison_covers_grid(self):
        results = run_full_comparison(models=["rgcn"], datasets=["aifb", "mutag"], modes=["inference"])
        assert len(results) == 2


class TestTables4And5:
    def test_table4_structure_and_hector_wins_on_average(self):
        results = run_full_comparison(models=["rgcn", "rgat"], datasets=SMALL_DATASETS)
        rows = speedup_summary(results=results)
        assert rows
        for row in rows:
            assert row["worst"] <= row["average"] <= row["best"]
        averages = [row["average"] for row in rows]
        assert all(avg > 1.0 for avg in averages)
        # Best-optimised is at least as fast as unoptimised on average.
        for mode in ("training", "inference"):
            for model in ("RGCN", "RGAT"):
                unopt = next(r for r in rows if r["config"] == "unopt." and r["mode"] == mode and r["model"] == model)
                best = next(r for r in rows if r["config"] == "b. opt." and r["mode"] == mode and r["model"] == model)
                assert best["average"] >= 0.95 * unopt["average"]

    def test_rgat_gains_exceed_rgcn_gains(self):
        results = run_full_comparison(models=["rgcn", "rgat"], datasets=SMALL_DATASETS, modes=["inference"])
        rows = speedup_summary(results=results)
        rgat = next(r for r in rows if r["model"] == "RGAT" and r["config"] == "unopt.")
        rgcn = next(r for r in rows if r["model"] == "RGCN" and r["config"] == "unopt.")
        assert rgat["best"] > rgcn["best"]

    def test_table5_compaction_helps_most_on_low_ratio_datasets(self):
        rows = optimization_speedups(models=["rgat"], datasets=["biokg", "aifb"], modes=["inference"])
        biokg = next(r for r in rows if r["dataset"] == "biokg")
        aifb = next(r for r in rows if r["dataset"] == "aifb")
        assert biokg["C"] > aifb["C"]

    def test_table5_average_rows_and_best_strategy(self):
        rows = optimization_speedups(models=["rgat", "hgt"], datasets=SMALL_DATASETS, modes=["inference"])
        averages = [r for r in rows if r["dataset"] == "AVERAGE"]
        assert len(averages) == 2
        assert best_fixed_strategy(rows) == "C+R"
        for row in averages:
            assert row["C+R"] >= max(row["C"], row["R"]) * 0.9


class TestFigures3And9:
    def test_figure3_breakdown_rows(self):
        rows = inference_time_breakdown(models=("rgat",), datasets=("fb15k", "mutag"))
        assert len(rows) == 4  # 2 datasets × 2 systems
        for row in rows:
            assert row["total_ms"] > 0
            assert row["matrix_multiply_ms"] >= 0
        hector = [r for r in rows if r["system"] == "Hector"]
        graphiler = [r for r in rows if r["system"] == "Graphiler"]
        assert sum(r["total_ms"] for r in hector) < sum(r["total_ms"] for r in graphiler)
        # Hector eliminates the dedicated indexing/copying kernels.
        assert all(r["indexing_copy_ms"] == 0 for r in hector)
        assert any(r["indexing_copy_ms"] > 0 for r in graphiler)

    def test_figure9_breakdown_configs(self):
        rows = hector_kernel_breakdown(datasets=("am", "fb15k"), configs=("U", "C", "C+R"))
        assert len(rows) == 6
        am_unopt = next(r for r in rows if r["dataset"] == "am" and r["config"] == "U")
        am_compact = next(r for r in rows if r["dataset"] == "am" and r["config"] == "C")
        assert am_compact["gemm_ms"] < am_unopt["gemm_ms"]


class TestFigures10To12:
    def test_memory_study_rows_and_compaction_fractions(self):
        rows = memory_footprint_study(datasets=["aifb", "biokg", "fb15k"])
        assert len(rows) == 3
        for row in rows:
            assert 0 < row["inference_compact_fraction"] <= 1.0
            assert row["training_mem_mib"] > row["inference_mem_mib"]
        biokg = next(r for r in rows if r["dataset"] == "biokg")
        aifb = next(r for r in rows if r["dataset"] == "aifb")
        assert biokg["inference_compact_fraction"] < aifb["inference_compact_fraction"]

    def test_dimension_sweep_sublinear_growth(self):
        rows = dimension_sweep(models=["rgcn"], datasets=["bgs"], modes=["inference"])
        assert len(rows) == 3
        ratios = sublinearity_ratios(rows)
        assert ratios and all(r["time_ratio"] < 4.0 for r in ratios)

    def test_architectural_metrics_shape_and_claims(self):
        rows = architectural_metrics(datasets=("bgs",), dims=(32, 64), configs=("U",))
        assert rows
        categories = {(r["category"], r["direction"]) for r in rows}
        assert ("gemm", "forward") in categories and ("traversal", "backward") in categories
        gemm_fwd = [r for r in rows if r["category"] == "gemm" and r["direction"] == "forward"]
        trav_fwd = [r for r in rows if r["category"] == "traversal" and r["direction"] == "forward"]
        # GEMM kernels achieve higher arithmetic throughput than traversal kernels.
        assert min(r["avg_achieved_gflops"] for r in gemm_fwd) > max(r["avg_achieved_gflops"] for r in trav_fwd)
        # Backward kernels have lower IPC than forward (atomics / outer products).
        gemm_bwd = [r for r in rows if r["category"] == "gemm" and r["direction"] == "backward"]
        assert max(r["avg_executed_ipc"] for r in gemm_bwd) <= max(r["avg_executed_ipc"] for r in gemm_fwd)

    def test_throughput_rises_with_feature_dimension(self):
        rows = architectural_metrics(datasets=("am",), dims=(32, 128), configs=("U",))
        gemm = [r for r in rows if r["category"] == "gemm" and r["direction"] == "forward"]
        small = next(r for r in gemm if r["dim"] == 32)
        large = next(r for r in gemm if r["dim"] == 128)
        assert large["avg_achieved_gflops"] > small["avg_achieved_gflops"]


class TestProgrammingEffort:
    def test_input_is_tiny_and_generated_is_large(self):
        metric = programming_effort_metric()
        totals = metric["totals"]
        assert totals["input_lines"] < 100
        assert totals["generated_total"] > 1000
        assert totals["expansion_factor"] > 20
        assert len(metric["per_model"]) == 3
