"""Unit tests of the autotuner: space, database, search, and frontend wiring."""

import numpy as np
import pytest

from repro.evaluation.workload import WorkloadSpec
from repro.frontend import compile_model, compile_program
from repro.frontend.cache import make_tuning_key
from repro.frontend.config import CONFIGURATIONS, CompilerOptions
from repro.models import REFERENCE_CLASSES, build_program
from repro.tuner import (
    TuningDatabase,
    TuningRecord,
    TuningSpace,
    evaluate_candidate,
    search_design_space,
    tune_model,
    tune_program,
)

DIM = 8


@pytest.fixture()
def db(tmp_path):
    return TuningDatabase(tmp_path / "tuning_db.json")


@pytest.fixture(scope="module")
def rgat_program():
    return build_program("rgat", in_dim=DIM, out_dim=DIM)


@pytest.fixture(scope="module")
def workload(small_graph):
    return WorkloadSpec.from_graph(small_graph, in_dim=DIM, out_dim=DIM)


class TestTuningSpace:
    def test_pass_candidates_cover_all_fixed_configurations(self):
        labels = {options.label() for options in TuningSpace().pass_candidates()}
        assert labels == set(CONFIGURATIONS)

    def test_default_point_comes_first(self):
        candidates = TuningSpace().pass_candidates()
        assert candidates[0] == CompilerOptions()
        full = TuningSpace().all_candidates()
        assert full[0] == CompilerOptions()

    def test_candidates_are_unique_and_sized(self):
        space = TuningSpace()
        full = space.all_candidates()
        assert len(full) == space.size == len({c.cache_key() for c in full})

    def test_base_switches_are_preserved(self):
        base = CompilerOptions(emit_backward=False, enable_memory_planning=False)
        for candidate in TuningSpace.quick().all_candidates(base):
            assert candidate.emit_backward is False
            assert candidate.enable_memory_planning is False

    def test_auto_level_is_stripped_from_candidates(self):
        base = CompilerOptions(optimization_level="auto")
        assert all(c.optimization_level is None for c in TuningSpace.quick().pass_candidates(base))


class TestSearch:
    def test_winner_never_slower_than_default(self, rgat_program, workload):
        result = search_design_space(rgat_program, workload, space=TuningSpace.quick())
        default = evaluate_candidate(rgat_program, CompilerOptions(), workload)
        assert result.best.estimated_ms <= default.estimated_ms

    def test_staged_and_exhaustive_agree_on_quick_space(self, rgat_program, workload):
        staged = search_design_space(rgat_program, workload, space=TuningSpace.quick(), search="staged")
        exhaustive = search_design_space(
            rgat_program, workload, space=TuningSpace.quick(), search="exhaustive"
        )
        assert exhaustive.best.estimated_ms <= staged.best.estimated_ms
        assert len(exhaustive.candidates) >= len(staged.candidates)

    def test_leaderboard_is_sorted(self, rgat_program, workload):
        result = search_design_space(rgat_program, workload, space=TuningSpace.quick())
        times = [row["estimated_ms"] for row in result.leaderboard(5)]
        assert times == sorted(times)

    def test_oom_candidates_are_marked_and_cannot_win(self, rgat_program, workload):
        from repro.gpu.device import RTX_3090
        from dataclasses import replace

        tiny_device = replace(RTX_3090, memory_bytes=16.0)
        evaluation = evaluate_candidate(rgat_program, CompilerOptions(), workload, tiny_device)
        assert evaluation.oom and evaluation.estimated_ms == float("inf")
        with pytest.raises(MemoryError):
            search_design_space(
                rgat_program, workload, space=TuningSpace.passes_only(), device=tiny_device
            )

    def test_training_mode_requires_backward(self, rgat_program, workload):
        with pytest.raises(ValueError, match="emit_backward"):
            search_design_space(
                rgat_program,
                workload,
                base_options=CompilerOptions(emit_backward=False),
                mode="training",
            )

    def test_rejects_unknown_mode_and_strategy(self, rgat_program, workload):
        with pytest.raises(ValueError):
            search_design_space(rgat_program, workload, mode="profiling")
        with pytest.raises(ValueError):
            search_design_space(rgat_program, workload, search="genetic")

    def test_measured_validation_fills_wall_clock(self, rgat_program, small_graph, workload):
        result = search_design_space(
            rgat_program,
            workload,
            space=TuningSpace.passes_only(),
            graph=small_graph,
            measure_top_k=2,
        )
        measured = [c for c in result.candidates if c.measured_ms is not None]
        assert len(measured) == 2
        assert all(c.measured_ms > 0 for c in measured)
        assert result.best.measured_ms == min(c.measured_ms for c in measured)

    def test_measured_validation_in_training_mode(self, rgat_program, small_graph, workload):
        result = search_design_space(
            rgat_program,
            workload,
            space=TuningSpace.passes_only(),
            mode="training",
            graph=small_graph,
            measure_top_k=1,
            measure_repeats=1,
        )
        assert result.best.measured_ms is not None and result.best.measured_ms > 0

    def test_measure_rejects_bad_mode_and_missing_backward(self, rgat_program, small_graph):
        from repro.tuner import measure_candidate_ms

        inference_only = compile_program(rgat_program, CompilerOptions(emit_backward=False))
        with pytest.raises(ValueError, match="emit_backward"):
            measure_candidate_ms(inference_only, small_graph, mode="training")
        with pytest.raises(ValueError, match="mode"):
            measure_candidate_ms(inference_only, small_graph, mode="profiling")

    def test_tune_program_needs_graph_or_workload(self, rgat_program):
        with pytest.raises(ValueError, match="graph or an explicit workload"):
            tune_program(rgat_program, db=TuningDatabase(None))


class TestTuningDatabase:
    def test_search_once_then_hit(self, db, small_graph):
        first = tune_model("rgat", small_graph, in_dim=DIM, out_dim=DIM, db=db)
        assert not first.db_hit
        assert db.stats.misses == 1 and db.stats.stores == 1
        second = tune_model("rgat", small_graph, in_dim=DIM, out_dim=DIM, db=db)
        assert second.db_hit
        assert db.stats.hits == 1 and db.stats.stores == 1
        assert second.options == first.options

    def test_replay_preserves_caller_base_switches(self, db, small_graph, rgat_program):
        tune_program(rgat_program, graph=small_graph, db=db)  # stored with default switches
        replay = tune_program(
            rgat_program,
            graph=small_graph,
            db=db,
            base_options=CompilerOptions(enable_memory_planning=False),
        )
        assert replay.db_hit
        assert replay.options.enable_memory_planning is False, (
            "a DB hit must not override the caller's non-searched switches"
        )

    def test_replay_that_would_oom_triggers_a_fresh_search(self, db, small_graph, rgat_program):
        """Schema-shared entries are re-validated against the workload at hand.

        A stored winner tuned on a small same-schema instance must not be
        replayed once its footprint no longer fits the device — the guard
        falls through to a fresh search instead.
        """
        from dataclasses import replace

        from repro.gpu.device import RTX_3090

        workload = WorkloadSpec.from_graph(small_graph, DIM, DIM)
        evaluated = [
            evaluate_candidate(rgat_program, options, workload)
            for options in TuningSpace().pass_candidates()
        ]
        biggest = max(evaluated, key=lambda c: c.memory_bytes)
        smallest = min(evaluated, key=lambda c: c.memory_bytes)
        assert smallest.memory_bytes < biggest.memory_bytes
        key = make_tuning_key(rgat_program, small_graph, DIM, DIM, RTX_3090.name, "inference")
        db.store(key, TuningRecord(options=biggest.options.to_dict(), estimated_ms=1.0))
        squeezed = replace(
            RTX_3090, memory_bytes=(smallest.memory_bytes + biggest.memory_bytes) / 2.0
        )
        result = tune_program(rgat_program, graph=small_graph, db=db, device=squeezed)
        assert not result.db_hit and not result.best.oom
        assert result.best.memory_bytes <= squeezed.memory_bytes

    def test_explicit_workloads_get_their_own_schema_entries(self, db, small_graph, rgat_program):
        tune_program(rgat_program, graph=small_graph, db=db)  # schema-scoped entry
        other = WorkloadSpec.from_graph(small_graph, DIM, DIM)
        other = WorkloadSpec(
            name="scaled",
            num_nodes=other.num_nodes * 100,
            num_edges=other.num_edges * 100,
            num_node_types=other.num_node_types,
            num_edge_types=other.num_edge_types,
            num_unique_pairs=other.num_unique_pairs * 100,
            in_dim=DIM,
            out_dim=DIM,
        )
        second = tune_program(rgat_program, graph=small_graph, workload=other, db=db)
        assert not second.db_hit, "an explicit pricing workload must not collide with the schema entry"
        assert len(db) == 2

    def test_mode_validation_also_applies_on_db_hit(self, db, small_graph, rgat_program):
        tune_program(rgat_program, graph=small_graph, db=db, mode="training")
        with pytest.raises(ValueError, match="emit_backward"):
            tune_program(
                rgat_program,
                graph=small_graph,
                db=db,
                mode="training",
                base_options=CompilerOptions(emit_backward=False),
            )
        with pytest.raises(ValueError, match="mode"):
            tune_program(rgat_program, graph=small_graph, db=db, mode="profiling")

    def test_search_does_not_pollute_the_global_compilation_cache(self, small_graph, rgat_program):
        from repro.frontend.cache import global_compilation_cache

        workload = WorkloadSpec.from_graph(small_graph, DIM, DIM)
        before = len(global_compilation_cache())
        search_design_space(rgat_program, workload, search="exhaustive")
        assert len(global_compilation_cache()) == before

    def test_persists_across_instances(self, db, small_graph, rgat_program):
        tune_program(rgat_program, graph=small_graph, db=db)
        reloaded = TuningDatabase(db.path)
        assert len(reloaded) == 1
        replay = tune_program(rgat_program, graph=small_graph, db=reloaded)
        assert replay.db_hit and reloaded.stats.hits == 1

    def test_distinct_keys_per_mode_dims_and_workload(self, rgat_program, small_graph, medium_graph):
        workload = WorkloadSpec.from_graph(small_graph, DIM, DIM)
        keys = {
            make_tuning_key(rgat_program, small_graph, DIM, DIM, "gpu", "inference"),
            make_tuning_key(rgat_program, small_graph, DIM, DIM, "gpu", "training"),
            make_tuning_key(rgat_program, small_graph, DIM, 2 * DIM, "gpu", "inference"),
            make_tuning_key(rgat_program, medium_graph, DIM, DIM, "gpu", "inference"),
            make_tuning_key(rgat_program, None, DIM, DIM, "gpu", "inference", workload=workload),
            make_tuning_key(rgat_program, None, DIM, DIM, "gpu", "inference"),
        }
        assert len(keys) == 6

    def test_clear_removes_file(self, db, small_graph):
        tune_model("rgcn", small_graph, in_dim=DIM, out_dim=DIM, db=db)
        assert db.path.exists()
        db.clear()
        assert len(db) == 0 and not db.path.exists()

    def test_corrupt_file_is_ignored(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("{not json")
        assert len(TuningDatabase(path)) == 0

    def test_version_mismatch_and_bad_records_are_ignored(self, tmp_path):
        import json

        path = tmp_path / "db.json"
        path.write_text(json.dumps({"version": 99, "records": {}}))
        assert len(TuningDatabase(path)) == 0
        good = TuningRecord(options=CompilerOptions().to_dict(), estimated_ms=1.0)
        from dataclasses import asdict

        payload = {
            "version": 1,
            "records": {
                "good": asdict(good),
                "bad": {"options": {"warp_speed": True}, "estimated_ms": 1.0},
            },
        }
        path.write_text(json.dumps(payload))
        reloaded = TuningDatabase(path)
        assert len(reloaded) == 1 and reloaded.keys() == ["good"]

    def test_default_database_honours_env_var_and_clears(self, tmp_path, monkeypatch):
        import repro.tuner.database as dbmod

        monkeypatch.setenv(dbmod.DB_PATH_ENV, str(tmp_path / "env_db.json"))
        monkeypatch.setattr(dbmod, "_GLOBAL_DB", None)
        db = dbmod.default_tuning_database()
        assert db.path == tmp_path / "env_db.json"
        assert dbmod.default_tuning_database() is db
        db.store("key", TuningRecord(options=CompilerOptions().to_dict(), estimated_ms=1.0))
        assert db.path.exists()
        dbmod.clear_tuning_database()
        assert len(db) == 0 and not db.path.exists()

    def test_record_roundtrip(self):
        options = CompilerOptions(compact_materialization=True, gemm_tile_size=32)
        record = TuningRecord(options=options.to_dict(), estimated_ms=1.5)
        assert record.compiler_options() == options

    def test_from_dict_rejects_unknown_fields(self):
        with pytest.raises(ValueError, match="unknown"):
            CompilerOptions.from_dict({"warp_speed": True})


class TestFrontendWiring:
    def test_compile_model_tune_true_searches_then_hits(self, db, small_graph):
        module = compile_model("rgcn", small_graph, in_dim=DIM, out_dim=DIM, tune=True, tuning_db=db)
        assert db.stats.misses == 1 and db.stats.stores == 1
        compile_model("rgcn", small_graph, in_dim=DIM, out_dim=DIM, tune=True, tuning_db=db)
        assert db.stats.hits == 1 and db.stats.stores == 1, "second call must not re-search"
        features = np.zeros((small_graph.num_nodes, DIM))
        out = module.forward(features)
        assert next(iter(out.values())).shape == (small_graph.num_nodes, DIM)

    def test_optimization_level_auto_implies_tuning(self, db, small_graph):
        options = CompilerOptions(optimization_level="auto")
        compile_model("rgat", small_graph, in_dim=DIM, out_dim=DIM, options=options, tuning_db=db)
        assert db.stats.stores == 1

    def test_tuned_module_matches_reference(self, db, small_graph):
        module = compile_model("rgat", small_graph, in_dim=DIM, out_dim=DIM, tune=True, tuning_db=db)
        reference = REFERENCE_CLASSES["rgat"](small_graph, DIM, DIM, seed=0)
        reference.load_parameters({k: p.data for k, p in module.parameters_by_name.items()})
        features = np.random.default_rng(0).standard_normal((small_graph.num_nodes, DIM))
        out = module.forward(features)
        ref = reference.forward(features)
        key = next(iter(out))
        np.testing.assert_allclose(out[key], ref[key].data, atol=1e-8)

    def test_compile_program_rejects_unresolved_auto(self, rgat_program):
        with pytest.raises(ValueError, match="auto"):
            compile_program(rgat_program, CompilerOptions(optimization_level="auto"))

    def test_invalid_level_rejected_at_construction(self):
        with pytest.raises(ValueError, match="optimization_level"):
            CompilerOptions(optimization_level="O3")
