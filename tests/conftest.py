"""Shared fixtures for the test suite."""

import numpy as np
import pytest

from repro.graph import HeteroGraph, random_hetero_graph


@pytest.fixture(scope="session")
def small_graph() -> HeteroGraph:
    """A small random heterogeneous graph (3 node types, 6 relations)."""
    return random_hetero_graph(
        num_nodes=60, num_edges=300, num_node_types=3, num_edge_types=6, seed=3, name="small"
    )


@pytest.fixture(scope="session")
def tiny_graph() -> HeteroGraph:
    """A tiny hand-checkable heterogeneous graph (2 node types, 2 relations)."""
    edges = {
        ("author", "writes", "paper"): (np.array([0, 0, 1, 2]), np.array([0, 1, 1, 2])),
        ("paper", "cites", "paper"): (np.array([0, 1, 2]), np.array([1, 2, 0])),
    }
    return HeteroGraph({"author": 3, "paper": 3}, edges, name="tiny")


@pytest.fixture(scope="session")
def medium_graph() -> HeteroGraph:
    """A slightly larger graph exercising skewed relation sizes."""
    return random_hetero_graph(
        num_nodes=200, num_edges=1500, num_node_types=4, num_edge_types=12, seed=11,
        name="medium", source_locality=0.5,
    )


@pytest.fixture(scope="session")
def rng() -> np.random.Generator:
    return np.random.default_rng(0)


@pytest.fixture
def small_features(small_graph, rng) -> np.ndarray:
    return rng.standard_normal((small_graph.num_nodes, 8))


def pytest_addoption(parser):
    parser.addoption(
        "--update-golden",
        action="store_true",
        default=False,
        help="rewrite the golden snapshots under tests/golden/ instead of comparing against them",
    )


@pytest.fixture
def update_golden(request) -> bool:
    """Whether golden-snapshot tests should refresh their files."""
    return request.config.getoption("--update-golden")
