"""Tests of the GNN functional primitives (gather/scatter, segment MM, softmax)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.tensor import Tensor, ops


class TestGatherScatter:
    def test_scatter_add_matches_manual_sum(self):
        values = Tensor(np.arange(8.0).reshape(4, 2), requires_grad=True)
        idx = np.array([0, 1, 1, 2])
        out = ops.scatter_add(values, idx, 4)
        expected = np.zeros((4, 2))
        for i, target in enumerate(idx):
            expected[target] += values.data[i]
        np.testing.assert_allclose(out.data, expected)

    def test_scatter_add_backward_is_gather(self):
        values = Tensor(np.random.randn(5, 3), requires_grad=True)
        idx = np.array([0, 0, 1, 2, 2])
        grad = np.random.randn(3, 3)
        ops.scatter_add(values, idx, 3).backward(grad)
        np.testing.assert_allclose(values.grad, grad[idx])

    def test_scatter_mean(self):
        values = Tensor(np.array([[2.0], [4.0], [6.0]]))
        out = ops.scatter_mean(values, np.array([0, 0, 1]), 3)
        np.testing.assert_allclose(out.data, [[3.0], [6.0], [0.0]])

    def test_gather_rows(self):
        source = Tensor(np.arange(10.0).reshape(5, 2))
        out = ops.gather_rows(source, [4, 0])
        np.testing.assert_allclose(out.data, [[8.0, 9.0], [0.0, 1.0]])


class TestTypedLinear:
    def test_segment_mm_matches_per_segment_matmul(self):
        feats = Tensor(np.random.randn(10, 3), requires_grad=True)
        weights = Tensor(np.random.randn(3, 3, 4), requires_grad=True)
        offsets = [0, 2, 7, 10]
        out = ops.segment_mm(feats, weights, offsets)
        for t, (start, end) in enumerate(zip(offsets[:-1], offsets[1:])):
            np.testing.assert_allclose(out.data[start:end], feats.data[start:end] @ weights.data[t])

    def test_segment_mm_rejects_bad_offsets(self):
        feats = Tensor(np.random.randn(5, 3))
        weights = Tensor(np.random.randn(2, 3, 4))
        with pytest.raises(ValueError):
            ops.segment_mm(feats, weights, [0, 5])
        with pytest.raises(ValueError):
            ops.segment_mm(feats, weights, [0, 2, 4])

    def test_segment_mm_empty_segment(self):
        feats = Tensor(np.random.randn(4, 3))
        weights = Tensor(np.random.randn(3, 3, 2))
        out = ops.segment_mm(feats, weights, [0, 0, 4, 4])
        np.testing.assert_allclose(out.data, feats.data @ weights.data[1])

    def test_gather_and_loop_strategies_agree(self):
        rng = np.random.default_rng(2)
        feats = Tensor(rng.standard_normal((20, 4)))
        weights = Tensor(rng.standard_normal((3, 4, 5)))
        types = rng.integers(0, 3, size=20)
        a = ops.typed_linear(feats, weights, types, strategy="gather")
        b = ops.typed_linear(feats, weights, types, strategy="loop")
        np.testing.assert_allclose(a.data, b.data, atol=1e-12)

    def test_typed_linear_unknown_strategy(self):
        with pytest.raises(ValueError):
            ops.typed_linear(Tensor(np.ones((2, 2))), Tensor(np.ones((1, 2, 2))), [0, 0], strategy="bogus")

    def test_typed_linear_gradients_match_between_strategies(self):
        rng = np.random.default_rng(3)
        types = np.sort(rng.integers(0, 2, size=10))
        grads = {}
        for strategy in ("gather", "loop"):
            feats = Tensor(rng.standard_normal((10, 3)), requires_grad=False)
            feats.data[:] = np.arange(30).reshape(10, 3)
            weights = Tensor(np.ones((2, 3, 4)), requires_grad=True)
            out = ops.typed_linear(feats, weights, types, strategy=strategy)
            out.sum().backward()
            grads[strategy] = weights.grad
        np.testing.assert_allclose(grads["gather"], grads["loop"], atol=1e-10)


class TestSoftmaxAndLosses:
    def test_softmax_rows_sum_to_one(self):
        x = Tensor(np.random.randn(5, 7))
        out = ops.softmax(x)
        np.testing.assert_allclose(out.data.sum(axis=-1), np.ones(5), atol=1e-12)

    def test_edge_softmax_groups_sum_to_one(self):
        scores = Tensor(np.random.randn(10))
        dst = np.array([0, 0, 0, 1, 1, 2, 2, 2, 2, 3])
        att = ops.edge_softmax(scores, dst, 5)
        sums = np.zeros(5)
        np.add.at(sums, dst, att.data)
        np.testing.assert_allclose(sums[:4], np.ones(4), atol=1e-12)
        assert sums[4] == 0.0  # node with no incoming edges

    def test_edge_softmax_is_stable_for_large_scores(self):
        scores = Tensor(np.array([1000.0, 1001.0, 999.0]))
        att = ops.edge_softmax(scores, np.array([0, 0, 0]), 1)
        assert np.all(np.isfinite(att.data))
        np.testing.assert_allclose(att.data.sum(), 1.0)

    def test_edge_softmax_gradient_is_finite(self):
        scores = Tensor(np.random.randn(6), requires_grad=True)
        dst = np.array([0, 0, 1, 1, 1, 2])
        att = ops.edge_softmax(scores, dst, 3)
        att.sum().backward()
        assert np.all(np.isfinite(scores.grad))

    def test_cross_entropy_positive_and_decreasing_with_confidence(self):
        targets = np.array([0, 1])
        weak = ops.cross_entropy(Tensor(np.zeros((2, 3))), targets)
        strong = ops.cross_entropy(Tensor(np.array([[5.0, 0, 0], [0, 5.0, 0]])), targets)
        assert weak.item() > strong.item() > 0

    def test_nll_loss_matches_manual(self):
        log_probs = Tensor(np.log(np.array([[0.7, 0.3], [0.2, 0.8]])))
        loss = ops.nll_loss(log_probs, np.array([0, 1]))
        expected = -(np.log(0.7) + np.log(0.8)) / 2
        assert abs(loss.item() - expected) < 1e-10


class TestSparseKernels:
    def test_spmm_unweighted_equals_adjacency_matmul(self):
        rng = np.random.default_rng(4)
        src = np.array([0, 1, 2, 2])
        dst = np.array([1, 1, 0, 2])
        feats = rng.standard_normal((3, 4))
        out = ops.spmm(src, dst, None, Tensor(feats), 3)
        dense = np.zeros((3, 3))
        for s, d in zip(src, dst):
            dense[d, s] += 1
        np.testing.assert_allclose(out.data, dense @ feats)

    def test_spmm_weighted(self):
        src = np.array([0, 1])
        dst = np.array([0, 0])
        weights = Tensor(np.array([2.0, 3.0]))
        feats = Tensor(np.array([[1.0, 1.0], [1.0, 0.0]]))
        out = ops.spmm(src, dst, weights, feats, 1)
        np.testing.assert_allclose(out.data, [[5.0, 2.0]])

    def test_sddmm_matches_manual_dots(self):
        rng = np.random.default_rng(5)
        a = rng.standard_normal((4, 3))
        b = rng.standard_normal((4, 3))
        src = np.array([0, 1, 3])
        dst = np.array([2, 2, 0])
        out = ops.sddmm(src, dst, Tensor(a), Tensor(b))
        expected = np.array([a[s] @ b[d] for s, d in zip(src, dst)])
        np.testing.assert_allclose(out.data, expected)

    def test_outer_product_shape_and_values(self):
        a = Tensor(np.array([[1.0, 2.0]]))
        b = Tensor(np.array([[3.0, 4.0, 5.0]]))
        out = ops.outer_product(a, b)
        assert out.shape == (1, 2, 3)
        np.testing.assert_allclose(out.data[0], np.outer([1, 2], [3, 4, 5]))

    @given(st.integers(min_value=1, max_value=30), st.integers(min_value=1, max_value=8))
    @settings(max_examples=20, deadline=None)
    def test_scatter_add_preserves_total_mass(self, num_edges, dim):
        rng = np.random.default_rng(num_edges * 13 + dim)
        values = rng.standard_normal((num_edges, dim))
        dst = rng.integers(0, 5, size=num_edges)
        out = ops.scatter_add(Tensor(values), dst, 5)
        np.testing.assert_allclose(out.data.sum(axis=0), values.sum(axis=0), atol=1e-9)
