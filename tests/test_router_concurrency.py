"""Concurrency battery for the serving router.

Locks down the three hazards the executor-pool redesign introduced:

* **Cross-tenant corruption** — threads hammering overlapping endpoints must
  leave every request with exactly the rows a single-threaded replay of the
  same requests produces, and a multi-worker ``serve`` must be bit-identical
  to ``workers=1``.
* **Arena-budget races** — concurrent lease/build/evict traffic from many
  tenants against one :class:`SharedArenaBudget` must keep the byte and
  arena accounting exactly consistent (inserts − evictions = live, tracked
  bytes = recomputed bytes).
* **Fault isolation** — a request whose seeds make the model raise must fail
  *alone*: batch-mates complete, other endpoints are untouched, and the
  router keeps serving afterwards.

Plus the per-seed cache-invalidation pin: a feature update kills only the
seeds whose sampled neighborhoods it touches — a hot unrelated seed keeps
its draw.
"""

import threading
import time

import numpy as np
import pytest

from repro.frontend import CompilerOptions, compile_model
from repro.graph import NeighborSampler, random_hetero_graph
from repro.runtime.planner import SharedArenaBudget
from repro.serving import Router

DIM = 8
OPTIONS = CompilerOptions(emit_backward=False)


@pytest.fixture(scope="module")
def graphs():
    return {
        "first": random_hetero_graph(
            num_nodes=60, num_edges=300, num_node_types=3, num_edge_types=6,
            seed=3, name="first",
        ),
        "second": random_hetero_graph(
            num_nodes=80, num_edges=400, num_node_types=2, num_edge_types=4,
            seed=9, name="second",
        ),
    }


@pytest.fixture(scope="module")
def modules(graphs):
    """Compiled once per file; routers adopt them (compilation is the slow part)."""
    return {
        "first": compile_model("rgcn", graphs["first"], in_dim=DIM, out_dim=DIM,
                               options=OPTIONS, seed=4),
        "second": compile_model("rgat", graphs["second"], in_dim=DIM, out_dim=DIM,
                                options=OPTIONS, seed=4),
    }


def build_router(modules, graphs, *, num_workers=1):
    router = Router(arena_capacity_bytes=32 << 20, num_workers=num_workers)
    router.register("a", modules["first"], graphs["first"], max_batch_size=4, seed=1)
    router.register("b", modules["second"], graphs["second"], max_batch_size=4, seed=2)
    return router


class TestConcurrentSubmission:
    def test_threaded_submitters_match_single_threaded_replay(self, modules, graphs):
        """Six threads interleave submissions to two overlapping endpoints;
        per-request rows must be *bit-identical* to a single-threaded replay
        of the per-endpoint admitted order (results are a pure function of
        each lane's FIFO — thread timing and lock contention never leak in),
        and match a canonical-order replay to fp tolerance (batch composition
        only moves BLAS reduction noise, never rows across tenants)."""
        num_threads, per_thread = 6, 10
        rng = np.random.default_rng(42)
        specs = []  # (thread, index, endpoint, seeds) — shared ground truth
        for thread_id in range(num_threads):
            for index in range(per_thread):
                name = ("a", "b")[(thread_id + index) % 2]
                num_nodes = graphs["first" if name == "a" else "second"].num_nodes
                seeds = rng.choice(num_nodes, size=3, replace=False)
                specs.append((thread_id, index, name, seeds))

        router = build_router(modules, graphs)
        barrier = threading.Barrier(num_threads)
        requests = {}
        lock = threading.Lock()

        def submitter(thread_id):
            barrier.wait()  # maximise interleaving
            for t, i, name, seeds in specs:
                if t != thread_id:
                    continue
                request = router.submit(name, seeds)
                with lock:
                    requests[(t, i)] = request

        threads = [
            threading.Thread(target=submitter, args=(thread_id,))
            for thread_id in range(num_threads)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        # The admitted per-endpoint order is what the threads raced over;
        # snapshot it — the replay contract is conditioned on it.
        id_to_key = {id(request): key for key, request in requests.items()}
        admitted_order = {
            name: [id_to_key[id(request)] for request in router.endpoint(name).pending]
            for name in ("a", "b")
        }
        router.flush()

        seeds_by_key = {(t, i): (name, seeds) for t, i, name, seeds in specs}
        replay = build_router(modules, graphs)
        replayed = {}
        for name in ("a", "b"):
            for key in admitted_order[name]:
                replayed[key] = replay.submit(name, seeds_by_key[key][1])
        replay.flush()

        canonical = build_router(modules, graphs)
        expected = {
            (t, i): canonical.submit(name, seeds)
            for t, i, name, seeds in specs  # canonical order, one thread
        }
        canonical.flush()

        assert len(requests) == len(specs)
        for key, request in requests.items():
            assert request.status == "done", f"request {key}: {request.status}"
            np.testing.assert_array_equal(
                request.result, replayed[key].result,
                err_msg=f"request {key} differs from the admitted-order replay",
            )
            np.testing.assert_allclose(
                request.result, expected[key].result, atol=1e-8,
                err_msg=f"request {key} differs from the canonical-order replay",
            )

    def test_multiworker_serve_bit_identical_to_single_worker(self, modules, graphs):
        rng = np.random.default_rng(7)
        stream = []
        for index in range(30):
            name = ("a", "b")[index % 2]
            num_nodes = graphs["first" if name == "a" else "second"].num_nodes
            stream.append((name, rng.choice(num_nodes, size=2, replace=False), index * 0.001))

        served = {}
        for workers in (1, 3):
            router = build_router(modules, graphs, num_workers=workers)
            report = router.serve(stream)
            assert report["serve"]["workers"] == workers
            assert report["serve"]["shed"] == 0
            served[workers] = router.last_served

        for single, pooled in zip(served[1], served[3]):
            assert single.status == pooled.status == "done"
            np.testing.assert_array_equal(single.result, pooled.result)


class TestArenaBudgetUnderConcurrency:
    def test_concurrent_lease_release_keeps_accounting_consistent(self, modules, graphs):
        """Four tenants lease/build/evict concurrently against one budget;
        afterwards the books must balance exactly: per-tenant lookups equal
        the leases issued, misses − evictions equal the live arenas, and the
        tracked per-tenant bytes equal the bytes recomputed from the live
        arenas.  ``max_arenas`` is set below the working set so evictions
        churn throughout."""
        module, graph = modules["first"], graphs["first"]
        features = np.random.default_rng(0).standard_normal((graph.num_nodes, DIM))
        sampler = NeighborSampler(graph, fanouts=(6,), seed=5)
        rng = np.random.default_rng(1)
        blocks = [
            sampler.sample(rng.choice(graph.num_nodes, size=size, replace=False))
            for size in (2, 8, 24)
        ]
        expected_rows = [
            module.bind(block.graph).forward(block.gather_features(features))
            for block in blocks
        ]

        budget = SharedArenaBudget(max_arenas=4)  # < 4 tenants × 3 buckets
        num_threads, iterations = 4, 30
        sources = [budget.tenant(f"tenant-{t}") for t in range(num_threads)]
        errors = []
        barrier = threading.Barrier(num_threads)

        def worker(thread_id):
            # One tenant per thread: same-tenant execution is serialised in
            # the router (lane serialization), so the contended surface is
            # the *budget* — cross-tenant insert/evict/touch under one lock.
            source = sources[thread_id]
            barrier.wait()
            try:
                for k in range(iterations):
                    block = blocks[(thread_id + k) % len(blocks)]
                    binding = module.bind(block.graph, arena_source=source)
                    out = binding.forward(block.gather_features(features))
                    expected = expected_rows[(thread_id + k) % len(blocks)]
                    for key, value in expected.items():
                        np.testing.assert_array_equal(out[key], value)
            except Exception as exc:  # surfaced after join; threads swallow otherwise
                errors.append((thread_id, exc))

        threads = [threading.Thread(target=worker, args=(t,)) for t in range(num_threads)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors, errors

        report = budget.report()
        for t in range(num_threads):
            tenant = report["tenants"][f"tenant-{t}"]
            assert tenant["hits"] + tenant["misses"] == iterations
        assert report["live_arenas"] <= 4
        assert report["evictions"] > 0, "max_arenas never forced an eviction"
        # Conservation: every miss inserted one arena, every eviction removed one.
        assert report["misses"] - report["evictions"] == report["live_arenas"]
        # Tracked bytes == bytes recomputed from the arenas actually held.
        for t in range(num_threads):
            name = f"tenant-{t}"
            recomputed = sum(
                arena.arena_bytes()
                for key, arena in budget._arenas.items()
                if key[0] == name
            )
            assert report["tenants"][name]["live_bytes"] == recomputed
        assert report["live_bytes"] == sum(
            tenant["live_bytes"] for tenant in report["tenants"].values()
        )
        assert report["high_water_bytes"] >= report["live_bytes"]


POISON = 7


def poison_endpoint(endpoint):
    """Make the endpoint raise whenever a batch contains the poison seed."""
    original = endpoint.execute_batch

    def poisoned(requests, timer=time.perf_counter):
        if any(POISON in request.seeds for request in requests):
            raise RuntimeError("poison seed rejected by the model")
        return original(requests, timer=timer)

    endpoint.execute_batch = poisoned


class TestFaultIsolation:
    def test_poisoned_request_fails_alone_on_flush(self, modules, graphs):
        router = build_router(modules, graphs)
        poison_endpoint(router.endpoint("a"))

        good_a = [router.submit("a", [1 + i, 20 + i]) for i in range(3)]
        bad = router.submit("a", [3, POISON])
        good_b = [router.submit("b", [2 + i]) for i in range(2)]
        router.flush()

        assert bad.status == "failed" and bad.result is None
        assert "endpoint 'a'" in bad.error and "poison" in bad.error
        for request in good_a + good_b:
            assert request.status == "done" and request.result is not None
        stats = router.endpoint("a").stats
        assert stats.failed_requests == 1
        # The router keeps serving the faulted endpoint afterwards.
        rows = router.query("a", [5, 11])
        assert rows.shape == (2, DIM)

    def test_poisoned_request_fails_alone_under_worker_pool(self, modules, graphs):
        router = build_router(modules, graphs, num_workers=2)
        poison_endpoint(router.endpoint("a"))
        stream = (
            [("a", [1 + i, 20 + i], i * 0.0005) for i in range(4)]
            + [("a", [3, POISON], 0.00125)]
            + [("b", [2 + i], i * 0.0005) for i in range(4)]
        )
        report = router.serve(stream)

        failed = [request for request in router.last_served if request.status == "failed"]
        assert len(failed) == 1 and POISON in failed[0].seeds
        assert "poison" in failed[0].error
        done = [request for request in router.last_served if request.status == "done"]
        assert len(done) == len(stream) - 1
        assert report["serve"]["completed"] == len(stream)  # failed folds as completed work
        assert report["endpoints"]["a"]["failed_requests"] == 1
        assert report["endpoints"]["b"].get("failed_requests", 0) == 0


class TestPerSeedInvalidation:
    def test_hot_seed_survives_update_to_another_seeds_features(self, modules, graphs):
        """The pin for per-seed cache keys: updating features inside seed B's
        sampled neighborhood redraws B but leaves hot seed A's entry (and its
        results) untouched."""
        router = build_router(modules, graphs)
        endpoint = router.endpoint("a")

        seed_a = 0
        result_a = router.query("a", [seed_a])
        entry_a = endpoint._seed_cache[seed_a]
        # Find a seed whose footprint has nodes A's footprint lacks.
        seed_b, update_node = None, None
        for candidate in range(1, graphs["first"].num_nodes):
            router.query("a", [candidate])
            entry = endpoint._seed_cache[candidate]
            extra = np.setdiff1d(entry.nodes, entry_a.nodes)
            if extra.size:
                seed_b, update_node = candidate, int(extra[0])
                break
        assert seed_b is not None, "no seed with a footprint disjoint enough from A"
        result_b = router.query("a", [seed_b])

        invalidated = endpoint.update_features(
            [update_node], endpoint.features[update_node] + 10.0
        )
        assert invalidated >= 1
        assert seed_a in endpoint._seed_cache, "unrelated hot seed was invalidated"
        assert seed_b not in endpoint._seed_cache, "touched seed kept its stale draw"

        hits_before = endpoint.block_cache_hits
        np.testing.assert_array_equal(router.query("a", [seed_a]), result_a)
        assert endpoint.block_cache_hits == hits_before + 1, (
            "hot seed's batch missed the cache after an unrelated update"
        )
        misses_before = endpoint.block_cache_misses
        refreshed = router.query("a", [seed_b])
        assert endpoint.block_cache_misses == misses_before + 1
        assert not np.array_equal(refreshed, result_b), (
            "seed B's rows ignore the feature update (stale cached block?)"
        )
