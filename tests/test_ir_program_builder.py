"""Tests of the inter-operator level IR: values, operators, builder, validation."""

import pytest

from repro.ir.inter_op import (
    InterOpProgram,
    LoopContext,
    Operator,
    OpKind,
    ProgramBuilder,
    Space,
    ValueInfo,
)
from repro.ir.inter_op.program import IRValidationError
from repro.ir.inter_op.space import TypeSelector
from repro.models import build_program


class TestValueInfo:
    def test_rows_per_space(self):
        class Workload:
            num_nodes = 10
            num_edges = 40
            num_unique_pairs = 25
            num_edge_types = 4
            num_node_types = 2

        workload = Workload()
        assert ValueInfo("a", Space.NODE, (8,)).rows(workload) == 10
        assert ValueInfo("b", Space.EDGE, (8,)).rows(workload) == 40
        assert ValueInfo("c", Space.COMPACT, (8,)).rows(workload) == 25
        assert ValueInfo("d", Space.WEIGHT, (8, 8), per_type="edge_type").rows(workload) == 4
        assert ValueInfo("e", Space.WEIGHT, (8, 8), per_type="node_type").rows(workload) == 2
        assert ValueInfo("f", Space.GLOBAL).rows(workload) == 1

    def test_num_bytes(self):
        class Workload:
            num_nodes = 10
            num_edges = 0
            num_unique_pairs = 0
            num_edge_types = 0
            num_node_types = 0

        value = ValueInfo("a", Space.NODE, (4,), dtype_bytes=4)
        assert value.num_bytes(Workload()) == 10 * 4 * 4

    def test_copy_with_overrides(self):
        value = ValueInfo("a", Space.EDGE, (8,))
        compacted = value.copy_with(space=Space.COMPACT)
        assert compacted.space is Space.COMPACT
        assert value.space is Space.EDGE


class TestBuilderAndValidation:
    def test_builder_produces_valid_programs_for_all_models(self):
        for model in ("rgcn", "rgat", "hgt"):
            program = build_program(model, in_dim=16, out_dim=16)
            program.validate()
            assert program.output_values()
            assert program.parameter_values()
            assert program.operators

    def test_duplicate_value_rejected(self):
        program = InterOpProgram("p")
        program.add_value(ValueInfo("x", Space.NODE, (4,)))
        with pytest.raises(IRValidationError):
            program.add_value(ValueInfo("x", Space.NODE, (4,)))

    def test_operator_with_unknown_value_rejected(self):
        program = InterOpProgram("p")
        program.add_value(ValueInfo("x", Space.NODE, (4,), is_input=True))
        with pytest.raises(IRValidationError):
            program.add_operator(
                Operator("op", OpKind.COPY, LoopContext.NODEWISE, ["missing"], "x")
            )

    def test_use_before_def_detected(self):
        builder = ProgramBuilder("p", 4, 4)
        h = builder.input_node_feature("h", 4)
        weight = builder.weight("W", (4, 4))
        builder.typed_linear(h, weight, "msg")
        program = builder.finish()
        # Manually reorder to create a use-before-def and check validation fails.
        program.operators.insert(
            0,
            Operator("bad", OpKind.COPY, LoopContext.EDGEWISE, ["msg"], "msg_copy"),
        )
        program.add_value(ValueInfo("msg_copy", Space.EDGE, (4,)))
        program.operators = [program.operators[0]] + program.operators[1:]
        with pytest.raises(IRValidationError):
            program.validate()

    def test_edgewise_node_operand_requires_binding(self):
        program = InterOpProgram("p")
        program.add_value(ValueInfo("h", Space.NODE, (4,), is_input=True))
        program.add_value(ValueInfo("out", Space.EDGE, (4,)))
        program.add_operator(
            Operator("op", OpKind.COPY, LoopContext.EDGEWISE, ["h"], "out")
        )
        with pytest.raises(IRValidationError):
            program.validate()

    def test_typed_operator_requires_selector(self):
        program = InterOpProgram("p")
        program.add_value(ValueInfo("x", Space.EDGE, (4,), is_input=True))
        program.add_value(ValueInfo("W", Space.WEIGHT, (4, 4), per_type="edge_type", is_parameter=True))
        program.add_value(ValueInfo("y", Space.EDGE, (4,)))
        program.add_operator(
            Operator("op", OpKind.TYPED_LINEAR, LoopContext.EDGEWISE, ["x", "W"], "y",
                     type_selector=TypeSelector.NONE)
        )
        with pytest.raises(IRValidationError):
            program.validate()

    def test_producer_and_consumers(self):
        program = build_program("rgcn")
        msg_producer = program.producer_of("msg")
        assert msg_producer is not None and msg_producer.kind is OpKind.TYPED_LINEAR
        consumers = program.consumers_of("msg")
        assert consumers and all("msg" in op.inputs for op in consumers)
        assert program.producer_of("h") is None  # inputs have no producer

    def test_live_values_and_fresh_names(self):
        program = build_program("rgat")
        live = program.live_values()
        assert "out" in live and "h" in live
        fresh = program.fresh_name("hs")
        assert fresh != "hs" and fresh not in program.values

    def test_dump_and_source_lines(self):
        program = build_program("hgt")
        dump = program.dump()
        assert "typed_linear" in dump and "W_ATT" in dump
        assert program.source_line_count() > 10

    def test_clone_is_independent(self):
        program = build_program("rgcn")
        clone = program.clone()
        clone.values["msg"] = clone.values["msg"].copy_with(space=Space.COMPACT)
        assert program.values["msg"].space is Space.EDGE

    def test_edge_softmax_helper_expands_to_four_operators(self):
        builder = ProgramBuilder("p", 4, 4)
        h = builder.input_node_feature("h", 4)
        weight = builder.weight("W", (4, 4))
        msg = builder.typed_linear(h, weight, "msg")
        scores = builder.typed_vec_dot(msg, builder.weight("w", (4,)), "scores")
        builder.edge_softmax(scores, "att")
        program = builder.program
        kinds = [op.kind for op in program.operators]
        assert kinds.count(OpKind.UNARY) == 1
        assert kinds.count(OpKind.AGGREGATE) == 1
        assert kinds.count(OpKind.GATHER_DST) == 1
        assert kinds.count(OpKind.BINARY) == 1

    def test_operator_describe_mentions_selector_and_binding(self):
        program = build_program("rgat")
        described = [op.describe() for op in program.operators]
        assert any("etype" in text for text in described)
        assert any("src" in text for text in described)
