"""Sampler correctness: schema preservation, fanout caps, seed addressing,
and block-vs-full-graph execution equivalence.

The hypothesis properties pin the structural contract of
:mod:`repro.graph.sampler`; the execution tests pin the semantic one — with
unbounded fanout, a one-hop block's outputs at the seed nodes must equal the
eager full-graph reference restricted to those seeds, for every model.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.frontend import CompilerOptions, compile_model
from repro.graph import NeighborSampler, hop_gather_indices, random_hetero_graph, sample_block
from repro.models import MODEL_NAMES, REFERENCE_CLASSES

DIM = 8


@st.composite
def graph_and_seeds(draw):
    """A random parent graph plus a non-empty seed set drawn from it."""
    num_node_types = draw(st.integers(2, 3))
    num_edge_types = draw(st.integers(2, 6))
    num_nodes = draw(st.integers(num_node_types * 4, 60))
    num_edges = draw(st.integers(num_edge_types, 180))
    graph_seed = draw(st.integers(0, 1000))
    graph = random_hetero_graph(
        num_nodes=num_nodes,
        num_edges=num_edges,
        num_node_types=num_node_types,
        num_edge_types=num_edge_types,
        seed=graph_seed,
        name="prop",
    )
    seeds = draw(
        st.lists(st.integers(0, graph.num_nodes - 1), min_size=1, max_size=8, unique=True)
    )
    return graph, np.array(seeds, dtype=np.int64)


class TestBlockStructure:
    @settings(max_examples=40, deadline=None)
    @given(data=graph_and_seeds(), fanout=st.one_of(st.none(), st.integers(1, 4)),
           rng_seed=st.integers(0, 100))
    def test_schema_fanout_and_seed_addressing(self, data, fanout, rng_seed):
        graph, seeds = data
        block = sample_block(graph, seeds, fanouts=(fanout,), seed=rng_seed)

        # Schema preserved, ordered: type ids keep indexing the same weights.
        assert block.graph.node_type_names == graph.node_type_names
        assert block.graph.canonical_etypes == graph.canonical_etypes

        # Fanout caps: per-relation in-degree within the block never exceeds
        # the cap (the memoised per-(relation, dst) draw guarantees this even
        # when the frontier revisits a node).
        if fanout is not None:
            for etype, (_, dst_local) in block.graph.edges_per_relation.items():
                if len(dst_local):
                    assert np.bincount(dst_local).max() <= fanout, etype

        # Seeds stay addressable through the scatter map.
        np.testing.assert_array_equal(block.node_map[block.seed_positions], seeds)
        assert block.num_nodes >= len(np.unique(seeds))

        # Every block edge exists in the parent (per relation, as a multiset).
        for etype, (src_b, dst_b) in block.graph.edges_per_relation.items():
            if not len(src_b):
                continue
            src_p, dst_p = graph.edges_per_relation[etype]
            parent_pairs = {(int(s), int(d)) for s, d in zip(src_p, dst_p)}
            src_type, _, dst_type = etype
            src_off = block.graph.node_type_offset(src_type)
            dst_off = block.graph.node_type_offset(dst_type)
            for s, d in zip(src_b, dst_b):
                parent_s = int(block.node_map[src_off + s]) - graph.node_type_offset(src_type)
                parent_d = int(block.node_map[dst_off + d]) - graph.node_type_offset(dst_type)
                assert (parent_s, parent_d) in parent_pairs, etype

    @settings(max_examples=20, deadline=None)
    @given(data=graph_and_seeds(), rng_seed=st.integers(0, 100))
    def test_full_fanout_keeps_every_seed_in_edge(self, data, rng_seed):
        """fanout=None one-hop blocks contain every incoming edge of a seed."""
        graph, seeds = data
        block = sample_block(graph, seeds, fanouts=(None,), seed=rng_seed)
        seed_set = set(seeds.tolist())
        expected = int(np.isin(graph.edge_dst, list(seed_set)).sum())
        assert block.num_edges == expected

    @settings(max_examples=20, deadline=None)
    @given(data=graph_and_seeds(), fanout=st.integers(1, 3))
    def test_sampling_is_deterministic_per_sampler_seed(self, data, fanout):
        graph, seeds = data
        first = sample_block(graph, seeds, fanouts=(fanout,), seed=9)
        second = sample_block(graph, seeds, fanouts=(fanout,), seed=9)
        np.testing.assert_array_equal(first.node_map, second.node_map)
        assert first.num_edges == second.num_edges
        for etype in graph.canonical_etypes:
            for a, b in zip(first.graph.edges_per_relation[etype],
                            second.graph.edges_per_relation[etype]):
                np.testing.assert_array_equal(a, b)

    def test_multi_hop_reaches_two_hop_neighbors(self):
        # A chain a0 -> a1 -> a2 (by "to"): seeds {2} need two hops to pull a0.
        from repro.graph import HeteroGraph

        chain = HeteroGraph(
            {"a": 3},
            {("a", "to", "a"): (np.array([0, 1]), np.array([1, 2]))},
            name="chain",
        )
        one_hop = sample_block(chain, [2], fanouts=(None,))
        two_hop = sample_block(chain, [2], fanouts=(None, None))
        assert one_hop.num_nodes == 2 and one_hop.num_edges == 1
        assert two_hop.num_nodes == 3 and two_hop.num_edges == 2

    def test_rejects_bad_seeds_and_fanouts(self, small_graph):
        with pytest.raises(ValueError):
            sample_block(small_graph, [])
        with pytest.raises(ValueError):
            sample_block(small_graph, [small_graph.num_nodes])
        with pytest.raises(ValueError):
            sample_block(small_graph, [-1])
        with pytest.raises(ValueError):
            NeighborSampler(small_graph, fanouts=())
        with pytest.raises(ValueError):
            NeighborSampler(small_graph, fanouts=(0,))

    def test_gather_and_scatter_shapes_are_validated(self, small_graph, rng):
        block = sample_block(small_graph, [0, 5, 9])
        with pytest.raises(ValueError):
            block.gather_features(np.zeros((small_graph.num_nodes - 1, 4)))
        with pytest.raises(ValueError):
            block.seed_outputs(np.zeros((block.num_nodes + 1, 4)))


class TestPerHopBlocks:
    """Structural contract of ``sample_blocks``: one block per hop,
    outermost first, hop boundaries composing through the node maps."""

    @settings(max_examples=30, deadline=None)
    @given(data=graph_and_seeds(),
           fanouts=st.lists(st.one_of(st.none(), st.integers(1, 4)), min_size=1, max_size=3),
           rng_seed=st.integers(0, 100))
    def test_hop_boundary_node_maps_compose(self, data, fanouts, rng_seed):
        graph, seeds = data
        sampler = NeighborSampler(graph, fanouts=fanouts, seed=rng_seed)
        blocks = sampler.sample_blocks(seeds)
        assert len(blocks) == len(fanouts)

        # Outermost first: hop indices count down to 1 at the seeds.
        assert [block.hop for block in blocks] == list(range(len(fanouts), 0, -1))

        # hop-k's destination set is exactly hop-(k-1)'s node set (src
        # frontier), and the innermost destinations are the seed set.
        for outer, inner in zip(blocks, blocks[1:]):
            np.testing.assert_array_equal(outer.dst_nodes, inner.node_map)
            gathered = hop_gather_indices(outer, inner)
            np.testing.assert_array_equal(outer.node_map[gathered], inner.node_map)
        np.testing.assert_array_equal(blocks[-1].dst_nodes, np.unique(seeds))

        # dst_positions address the destination frontier inside each block.
        for block in blocks:
            np.testing.assert_array_equal(block.node_map[block.dst_positions], block.dst_nodes)
            np.testing.assert_array_equal(block.node_map[block.seed_positions], seeds)

    @settings(max_examples=30, deadline=None)
    @given(data=graph_and_seeds(),
           fanouts=st.lists(st.integers(1, 3), min_size=2, max_size=3),
           rng_seed=st.integers(0, 100))
    def test_each_hop_respects_its_own_fanout(self, data, fanouts, rng_seed):
        """Per-relation in-degrees in hop i's block never exceed fanouts[i-1],
        even when hops use different caps (a revisited node must not carry a
        larger earlier draw into a tighter hop)."""
        graph, seeds = data
        blocks = NeighborSampler(graph, fanouts=fanouts, seed=rng_seed).sample_blocks(seeds)
        for block, fanout in zip(blocks, reversed(fanouts)):
            assert block.fanouts == (fanout,)
            for etype, (_, dst_local) in block.graph.edges_per_relation.items():
                if len(dst_local):
                    assert np.bincount(dst_local).max() <= fanout, (etype, block.hop)

    @settings(max_examples=20, deadline=None)
    @given(data=graph_and_seeds(), fanout=st.one_of(st.none(), st.integers(1, 3)),
           rng_seed=st.integers(0, 100))
    def test_every_hop_preserves_the_relation_vocabulary(self, data, fanout, rng_seed):
        """Empty relations stay, in order, so etype ids keep indexing the
        same per-relation weights at every hop."""
        graph, seeds = data
        blocks = NeighborSampler(graph, fanouts=(fanout, fanout), seed=rng_seed).sample_blocks(seeds)
        for block in blocks:
            assert block.graph.canonical_etypes == graph.canonical_etypes
            assert block.graph.node_type_names == graph.node_type_names

    @settings(max_examples=15, deadline=None)
    @given(data=graph_and_seeds(), fanout=st.integers(1, 3), epoch=st.integers(0, 3))
    def test_resampling_with_same_seed_is_deterministic_across_epochs(self, data, fanout, epoch):
        """Two samplers with one base seed replay identical per-hop blocks
        for any epoch, independent of what earlier epochs drew."""
        graph, seeds = data
        first = NeighborSampler(graph, fanouts=(fanout, fanout), seed=13)
        second = NeighborSampler(graph, fanouts=(fanout, fanout), seed=13)
        for earlier in range(epoch):  # first sampler also samples earlier epochs
            first.resample(earlier)
            first.sample_blocks(seeds)
        first.resample(epoch)
        second.resample(epoch)
        for a, b in zip(first.sample_blocks(seeds), second.sample_blocks(seeds)):
            np.testing.assert_array_equal(a.node_map, b.node_map)
            assert a.num_edges == b.num_edges
            for etype in graph.canonical_etypes:
                for left, right in zip(a.graph.edges_per_relation[etype],
                                       b.graph.edges_per_relation[etype]):
                    np.testing.assert_array_equal(left, right)

    @settings(max_examples=25, deadline=None)
    @given(data=graph_and_seeds(),
           fanouts=st.lists(st.integers(1, 4), min_size=2, max_size=3),
           rng_seed=st.integers(0, 100))
    def test_merged_block_caps_hold_under_heterogeneous_fanouts(self, data, fanouts, rng_seed):
        """A destination revisited at a later merged hop reuses its first
        draw even when the hops' fanouts differ, so merged per-relation
        in-degrees never exceed the largest configured cap."""
        graph, seeds = data
        block = NeighborSampler(graph, fanouts=fanouts, seed=rng_seed).sample(seeds)
        cap = max(fanouts)
        for etype, (_, dst_local) in block.graph.edges_per_relation.items():
            if len(dst_local):
                assert np.bincount(dst_local).max() <= cap, etype

    def test_merged_block_equals_outermost_hop_under_uniform_fanout(self, medium_graph):
        """Within one epoch (shared draw memo) the merged 2-hop block and the
        outermost per-hop block contain exactly the same edges — the basis of
        edge-for-edge per-hop vs merged work accounting."""
        sampler = NeighborSampler(medium_graph, fanouts=(3, 3), seed=4)
        seeds = np.array([0, 17, 55, 120, 199])
        blocks = sampler.sample_blocks(seeds)
        merged = sampler.sample(seeds)
        assert blocks[0].num_edges == merged.num_edges
        np.testing.assert_array_equal(blocks[0].node_map, merged.node_map)
        # ... and the inner hop is a strict subset on any graph with depth.
        assert blocks[1].num_edges <= blocks[0].num_edges


class TestEpochResampling:
    """The draw memo is epoch-scoped: stable within an epoch, fresh across
    epochs, reproducible from the base seed."""

    def test_draws_are_memoised_within_an_epoch(self, medium_graph):
        sampler = NeighborSampler(medium_graph, fanouts=(2,), seed=0)
        seeds = np.arange(0, 40)
        first = sampler.sample(seeds)
        hits_before = sampler.draw_hits
        second = sampler.sample(seeds)
        assert sampler.draw_hits > hits_before
        np.testing.assert_array_equal(first.node_map, second.node_map)
        for etype in medium_graph.canonical_etypes:
            for a, b in zip(first.graph.edges_per_relation[etype],
                            second.graph.edges_per_relation[etype]):
                np.testing.assert_array_equal(a, b)

    def test_fanout_cap_holds_across_overlapping_minibatches(self, medium_graph):
        """Two same-epoch minibatches sharing destinations reuse one draw, so
        the union of their blocks still respects the cap per destination."""
        sampler = NeighborSampler(medium_graph, fanouts=(2,), seed=0)
        block_a = sampler.sample(np.arange(0, 30))
        block_b = sampler.sample(np.arange(15, 45))  # overlaps 15..29
        for block in (block_a, block_b):
            for etype, (_, dst_local) in block.graph.edges_per_relation.items():
                if len(dst_local):
                    assert np.bincount(dst_local).max() <= 2

    def test_resample_draws_fresh_neighborhoods(self, medium_graph):
        """Epochs must differ: without resample(), every epoch would train on
        exactly the first epoch's neighborhoods."""
        sampler = NeighborSampler(medium_graph, fanouts=(2,), seed=0)
        seeds = np.arange(0, 60)
        epoch_one = sampler.sample(seeds)
        sampler.resample()
        assert sampler.epoch == 1
        epoch_two = sampler.sample(seeds)
        assert any(
            not np.array_equal(epoch_one.graph.edges_per_relation[etype][0],
                               epoch_two.graph.edges_per_relation[etype][0])
            or not np.array_equal(epoch_one.node_map, epoch_two.node_map)
            for etype in medium_graph.canonical_etypes
        )

    def test_epochs_are_reproducible_from_the_base_seed(self, medium_graph):
        sampler_a = NeighborSampler(medium_graph, fanouts=(2,), seed=9)
        sampler_b = NeighborSampler(medium_graph, fanouts=(2,), seed=9)
        seeds = np.arange(0, 50)
        # a samples epochs 0..2; b jumps straight to epoch 2.
        results = {}
        for epoch in range(3):
            sampler_a.resample(epoch)
            results[epoch] = sampler_a.sample(seeds)
        sampler_b.resample(2)
        replay = sampler_b.sample(seeds)
        np.testing.assert_array_equal(results[2].node_map, replay.node_map)
        for etype in medium_graph.canonical_etypes:
            for a, b in zip(results[2].graph.edges_per_relation[etype],
                            replay.graph.edges_per_relation[etype]):
                np.testing.assert_array_equal(a, b)

    def test_draw_hit_rate_telemetry(self, medium_graph):
        sampler = NeighborSampler(medium_graph, fanouts=(2,), seed=0)
        assert sampler.draw_hit_rate == 0.0
        sampler.sample(np.arange(0, 20))
        sampler.sample(np.arange(0, 20))
        assert 0.0 < sampler.draw_hit_rate <= 1.0


class TestBlockExecution:
    """Compiled execution on blocks vs the eager full-graph reference."""

    @pytest.mark.parametrize("model", MODEL_NAMES)
    @pytest.mark.parametrize("config_label", ["U", "C+R"])
    def test_full_fanout_block_matches_reference_at_seeds(self, model, config_label,
                                                          small_graph, rng):
        from repro.frontend.config import CONFIGURATIONS

        options = CONFIGURATIONS[config_label].with_(emit_backward=False)
        module = compile_model(model, small_graph, in_dim=DIM, out_dim=DIM,
                               options=options, seed=3)
        reference = REFERENCE_CLASSES[model](small_graph, DIM, DIM, seed=3)
        reference.load_parameters({k: p.data for k, p in module.parameters_by_name.items()})
        features = rng.standard_normal((small_graph.num_nodes, DIM))
        full = reference.forward(features)
        key = next(iter(full))

        seeds = np.array([1, 7, 19, 33, 50])
        block = sample_block(small_graph, seeds, fanouts=(None,), seed=2)
        binding = module.bind(block.graph)
        block_out = binding.forward(block.gather_features(features))[key]
        np.testing.assert_allclose(
            block.seed_outputs(block_out), full[key].data[seeds], atol=1e-8
        )

    @settings(max_examples=10, deadline=None)
    @given(data=graph_and_seeds(), rng_seed=st.integers(0, 50))
    def test_rgcn_block_execution_property(self, data, rng_seed):
        """The execution-equivalence property under random graphs and seeds."""
        graph, seeds = data
        module = compile_model(
            "rgcn", graph, in_dim=DIM, out_dim=DIM,
            options=CompilerOptions(emit_backward=False), seed=1,
        )
        reference = REFERENCE_CLASSES["rgcn"](graph, DIM, DIM, seed=1)
        reference.load_parameters({k: p.data for k, p in module.parameters_by_name.items()})
        features = np.random.default_rng(rng_seed).standard_normal((graph.num_nodes, DIM))
        full = reference.forward(features)
        key = next(iter(full))

        block = sample_block(graph, seeds, fanouts=(None,), seed=rng_seed)
        binding = module.bind(block.graph)
        block_out = binding.forward(block.gather_features(features))[key]
        np.testing.assert_allclose(
            block.seed_outputs(block_out), full[key].data[seeds], atol=1e-8
        )
