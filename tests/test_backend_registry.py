"""Backend registry API: registration, capabilities, selection, deprecations."""

import numpy as np
import pytest

import repro
from repro.frontend import CompilerOptions, compile_model, compile_program
from repro.graph import random_hetero_graph
from repro.ir.codegen import (
    Backend,
    BackendOptions,
    SourceModule,
    available_backends,
    build_python_module,
    get_backend,
    register_backend,
)
from repro.ir.codegen.cuda_backend import generate_cuda_source
from repro.ir.codegen.python_backend import generate_python_module
from repro.models import build_program

DIM = 4


@pytest.fixture(scope="module")
def graph():
    return random_hetero_graph(20, 70, 2, 4, seed=9)


@pytest.fixture(scope="module")
def plan():
    return compile_program(build_program("rgcn", in_dim=DIM, out_dim=DIM)).plan


class TestRegistrySurface:
    def test_builtin_backends_are_registered(self):
        names = available_backends()
        assert "python-interp" in names
        assert "python-codegen" in names
        assert "cuda-emit" in names

    def test_capability_flags(self):
        interp = get_backend("python-interp")
        codegen = get_backend("python-codegen")
        cuda = get_backend("cuda-emit")
        assert interp.executes and interp.supports_training
        assert codegen.executes and codegen.supports_training and codegen.emits_source
        assert cuda.emits_source and not cuda.executes

    def test_unknown_backend_lists_available(self):
        with pytest.raises(KeyError, match="python-interp"):
            get_backend("no-such-backend")

    def test_reregistering_taken_name_requires_replace(self):
        interp = get_backend("python-interp")
        with pytest.raises(ValueError, match="already registered"):
            register_backend(interp)
        assert register_backend(interp, replace=True) is interp
        assert get_backend("python-interp") is interp

    def test_registry_entry_points_are_reexported_from_repro(self):
        assert repro.get_backend is get_backend
        assert repro.register_backend is register_backend
        assert repro.available_backends is available_backends
        assert repro.Backend is Backend


class TestCustomBackend:
    def test_custom_registrant_is_selectable_end_to_end(self, graph):
        """A drop-in backend (here wrapping interp) flows through compile_model."""
        calls = []

        class RecordingBackend(Backend):
            name = "test-recording"
            executes = True
            emits_source = True
            supports_training = True

            def generate(self, plan, options=None):
                calls.append((plan.name, options))
                return build_python_module(plan)

        register_backend(RecordingBackend(), replace=True)
        try:
            module = compile_model(
                "rgcn", graph, in_dim=DIM, out_dim=DIM,
                options=CompilerOptions(enable_compilation_cache=False),
                backend="test-recording",
            )
            assert module.backend == "test-recording"
            assert module.summary()["backend"] == "test-recording"
            assert len(calls) == 1
            assert isinstance(calls[0][1], BackendOptions)
            assert calls[0][1].num_edge_types == graph.num_edge_types
            features = np.random.default_rng(0).standard_normal((graph.num_nodes, DIM))
            out = module.forward(features)
            assert next(iter(out.values())).shape == (graph.num_nodes, DIM)
        finally:
            import repro.ir.codegen.registry as registry

            registry._REGISTRY.pop("test-recording", None)


class TestCapabilityErrors:
    def test_emit_only_backend_rejected_for_execution(self):
        program = build_program("rgcn", in_dim=DIM, out_dim=DIM)
        with pytest.raises(ValueError, match="only emits source"):
            compile_program(program, CompilerOptions(backend="cuda-emit"))

    def test_non_training_backend_rejected_for_training(self):
        class InferenceOnly(Backend):
            name = "test-inference-only"
            executes = True
            supports_training = False

            def generate(self, plan, options=None):  # pragma: no cover - never reached
                return build_python_module(plan)

        register_backend(InferenceOnly(), replace=True)
        try:
            program = build_program("rgcn", in_dim=DIM, out_dim=DIM)
            with pytest.raises(ValueError, match="backward"):
                compile_program(
                    program,
                    CompilerOptions(backend="test-inference-only", emit_backward=True),
                )
        finally:
            import repro.ir.codegen.registry as registry

            registry._REGISTRY.pop("test-inference-only", None)

    def test_nameless_backend_rejected(self):
        class Nameless(Backend):
            executes = True

            def generate(self, plan, options=None):  # pragma: no cover
                return build_python_module(plan)

        with pytest.raises(ValueError, match="non-empty name"):
            register_backend(Nameless())


class TestCodegenBackendEquivalence:
    def test_codegen_matches_interp_bitwise(self, graph):
        features = np.random.default_rng(1).standard_normal((graph.num_nodes, DIM))
        results = {}
        for backend in ("python-interp", "python-codegen"):
            module = compile_model(
                "rgat", graph, in_dim=DIM, out_dim=DIM, seed=2,
                options=CompilerOptions(fuse_elementwise=True, backend=backend),
            )
            out = module.forward(features)
            module.backward({k: np.ones_like(v) for k, v in out.items()})
            results[backend] = (
                out,
                {k: p.grad.copy() for k, p in module.parameters_by_name.items()},
            )
        interp_out, interp_grads = results["python-interp"]
        codegen_out, codegen_grads = results["python-codegen"]
        for key in interp_out:
            assert interp_out[key].tobytes() == codegen_out[key].tobytes()
        assert set(interp_grads) == set(codegen_grads)
        for key in interp_grads:
            assert interp_grads[key].tobytes() == codegen_grads[key].tobytes()

    def test_codegen_emits_whole_plan_functions(self, graph):
        module = compile_model(
            "rgcn", graph, in_dim=DIM, out_dim=DIM,
            options=CompilerOptions(backend="python-codegen"),
        )
        source = module.generated_source()
        assert "def main_forward(env, ctx):" in source
        assert "def main_backward(env, ctx):" in source
        # Schema-specialised: the per-relation launch loop is unrolled.
        assert module.generated.forward_program is not None
        assert module.generated.seeds_gradients is True

    def test_cache_keeps_backend_artifacts_apart(self, graph):
        interp = compile_model("rgcn", graph, in_dim=DIM, out_dim=DIM,
                               options=CompilerOptions(backend="python-interp"))
        codegen = compile_model("rgcn", graph, in_dim=DIM, out_dim=DIM,
                                options=CompilerOptions(backend="python-codegen"))
        assert interp.generated is not codegen.generated
        assert interp.backend == "python-interp"
        assert codegen.backend == "python-codegen"


class TestDeprecatedAliases:
    def test_generate_python_module_warns_and_delegates(self, plan):
        with pytest.warns(DeprecationWarning, match="python-interp"):
            module = generate_python_module(plan)
        assert module.forward_program is not None

    def test_generate_cuda_source_warns_and_delegates(self, plan):
        with pytest.warns(DeprecationWarning, match="cuda-emit"):
            text = generate_cuda_source(plan)
        assert text == get_backend("cuda-emit").generate(plan).source

    def test_source_module_line_count(self, plan):
        artifact = get_backend("cuda-emit").generate(plan)
        assert isinstance(artifact, SourceModule)
        assert artifact.line_count() == len(artifact.source.splitlines())
