"""Equivalence lockdown for the ``repro.train`` minibatch-training subsystem.

The central contract: minibatch training over sampled blocks is *the same
computation* as full-graph training when sampling is exact.  With
``fanouts=(None,)`` and gradient accumulation over the whole epoch:

* a single accumulation window covering every node executes the identical
  kernel sequence on an identical block graph, so gradients **and** the
  post-step parameters are bit-identical to full-graph training
  (``np.array_equal``, no tolerance) for RGCN, RGAT, and HGT;
* a multi-minibatch partition computes the same sums in a different
  floating-point association, so it is pinned to tight fp tolerance instead.

The suite also locks the stale-backward guard (interleaving another
binding's forward between a forward/backward pair must raise, not corrupt
gradients) and the multi-layer per-hop execution path against full-graph
multi-layer training.
"""

import numpy as np
import pytest

from repro.frontend import compile_model
from repro.graph import NeighborSampler, random_hetero_graph
from repro.graph.generators import random_labels
from repro.models import MODEL_NAMES
from repro.runtime import MultiLayerModule
from repro.tensor import optim
from repro.train import MinibatchTrainer, mean_squared_error, softmax_cross_entropy

DIM = 8
LR = 0.5


@pytest.fixture(scope="module")
def train_graph():
    return random_hetero_graph(
        num_nodes=60, num_edges=300, num_node_types=3, num_edge_types=6, seed=3, name="train"
    )


@pytest.fixture(scope="module")
def train_features(train_graph):
    return np.random.default_rng(0).standard_normal((train_graph.num_nodes, DIM))


@pytest.fixture(scope="module")
def train_labels(train_graph):
    return random_labels(train_graph, DIM, seed=1)


def full_graph_epoch(model, graph, features, labels, lr=LR, seed=7):
    """One step of classic full-graph mean-loss training; returns the module
    and its pre-step gradients."""
    module = compile_model(model, graph, in_dim=DIM, out_dim=DIM, seed=seed)
    optimizer = optim.SGD(module.parameters(), lr=lr)
    module.zero_grad()
    logits = module.forward(features)[module.output_name]
    _, grad = softmax_cross_entropy(logits, labels)
    module.backward({module.output_name: grad / graph.num_nodes})
    grads = {name: p.grad.copy() for name, p in module.parameters_by_name.items()}
    optimizer.step()
    return module, grads


class TestFullAccumulationEquivalence:
    """fanouts=(None,) + accumulation over all minibatches vs full-graph."""

    @pytest.mark.parametrize("model", MODEL_NAMES)
    def test_single_window_epoch_is_bit_identical(self, model, train_graph, train_features,
                                                  train_labels):
        """One minibatch covering every node, full accumulation: the block IS
        the graph, so gradients and updated parameters match bit for bit."""
        reference, reference_grads = full_graph_epoch(
            model, train_graph, train_features, train_labels
        )
        module = compile_model(model, train_graph, in_dim=DIM, out_dim=DIM, seed=7)
        trainer = MinibatchTrainer(
            module, train_graph, train_features, train_labels,
            lr=LR, batch_size=None, accumulation_steps=None, fanouts=(None,),
        )
        trainer.epoch()
        for name, parameter in module.parameters_by_name.items():
            assert np.array_equal(parameter.grad, reference_grads[name]), name
            assert np.array_equal(
                parameter.data, reference.parameters_by_name[name].data
            ), name

    @pytest.mark.parametrize("model", MODEL_NAMES)
    def test_multi_minibatch_accumulation_matches_full_graph(self, model, train_graph,
                                                             train_features, train_labels):
        """Four minibatches accumulated into one step sum the identical
        per-edge contributions; only fp association differs, so the match is
        pinned at 1e-10 relative instead of bitwise."""
        _, reference_grads = full_graph_epoch(model, train_graph, train_features, train_labels)
        module = compile_model(model, train_graph, in_dim=DIM, out_dim=DIM, seed=7)
        trainer = MinibatchTrainer(
            module, train_graph, train_features, train_labels,
            lr=LR, batch_size=15, accumulation_steps=None, fanouts=(None,),
        )
        record = trainer.epoch()
        assert record.num_minibatches == 4 and record.num_steps == 1
        for name, parameter in module.parameters_by_name.items():
            np.testing.assert_allclose(
                parameter.grad, reference_grads[name], rtol=1e-10, atol=1e-12, err_msg=name
            )

    def test_full_coverage_block_reproduces_parent_structure(self, train_graph):
        """The premise of bit-identity: seeds covering every node with
        unbounded fanout yield a block structurally identical to the parent."""
        sampler = NeighborSampler(train_graph, fanouts=(None,), seed=0)
        block = sampler.sample(np.random.default_rng(3).permutation(train_graph.num_nodes))
        np.testing.assert_array_equal(block.node_map, np.arange(train_graph.num_nodes))
        assert block.num_edges == train_graph.num_edges
        for etype, (src, dst) in train_graph.edges_per_relation.items():
            block_src, block_dst = block.graph.edges_per_relation[etype]
            np.testing.assert_array_equal(block_src, src)
            np.testing.assert_array_equal(block_dst, dst)

    def test_mse_objective_equivalence(self, train_graph, train_features):
        """The MSE path follows the same window-mean gradient contract."""
        targets = np.random.default_rng(5).standard_normal((train_graph.num_nodes, DIM))
        module = compile_model("rgcn", train_graph, in_dim=DIM, out_dim=DIM, seed=7)
        module.zero_grad()
        out = module.forward(train_features)[module.output_name]
        _, grad = mean_squared_error(out, targets)
        module.backward({module.output_name: grad / train_graph.num_nodes})
        reference_grads = {k: p.grad.copy() for k, p in module.parameters_by_name.items()}

        trained = compile_model("rgcn", train_graph, in_dim=DIM, out_dim=DIM, seed=7)
        trainer = MinibatchTrainer(
            trained, train_graph, train_features, targets, objective="mse",
            lr=LR, batch_size=None, accumulation_steps=None,
        )
        trainer.epoch()
        for name, parameter in trained.parameters_by_name.items():
            assert np.array_equal(parameter.grad, reference_grads[name]), name


class TestStaleBackwardGuard:
    """Interleaving another binding's forward between a forward/backward
    pair must raise the bind-generation error, never corrupt gradients."""

    def test_interleaved_forward_raises_between_pair(self, train_graph, train_features,
                                                     train_labels):
        module = compile_model("rgcn", train_graph, in_dim=DIM, out_dim=DIM, seed=7)
        sampler = NeighborSampler(train_graph, fanouts=(None,), seed=0)
        # The same seed set twice: identical block sizes land in one pool
        # bucket, so the two bindings share a pooled arena.
        block_a = sampler.sample(np.arange(0, 30))
        block_b = sampler.sample(np.arange(0, 30))
        binding_a = module.bind(block_a.graph)
        binding_b = module.bind(block_b.graph)
        assert binding_a.arena is binding_b.arena

        features_a = block_a.gather_features(train_features)
        features_b = block_b.gather_features(train_features)
        out_a = binding_a.forward(features_a)[module.output_name]
        binding_b.forward(features_b)
        with pytest.raises(RuntimeError, match="stale"):
            binding_a.backward({module.output_name: np.zeros_like(out_a)})

    def test_trainer_ordering_never_trips_the_guard(self, train_graph, train_features,
                                                    train_labels):
        """The trainer runs each minibatch's forward+backward as a pair, so a
        full multi-minibatch epoch never hits the guard."""
        module = compile_model("rgcn", train_graph, in_dim=DIM, out_dim=DIM, seed=7)
        trainer = MinibatchTrainer(
            module, train_graph, train_features, train_labels,
            lr=LR, batch_size=10, accumulation_steps=2, fanouts=(4,),
        )
        trainer.train(2)  # would raise on any stale backward

    def test_multilayer_run_interleaving_raises(self, train_graph, train_features):
        """Two stack runs of one MultiLayerModule interleaved (forward A,
        forward B, backward A) share pooled arenas and must be rejected."""
        stack = MultiLayerModule.build("rgcn", train_graph, dims=(DIM, DIM, DIM), seed=5)
        sampler = NeighborSampler(train_graph, fanouts=(None, None), seed=2)
        seeds = np.array([1, 7, 19, 33, 50])
        blocks = sampler.sample_blocks(seeds)
        run_a = stack.forward_blocks(blocks, train_features)
        merged = sampler.sample(seeds)
        stack.forward_merged(merged, train_features)  # same buckets, same arenas
        inner = blocks[-1]
        grad = np.zeros((inner.num_nodes, DIM))
        with pytest.raises(RuntimeError, match="stale"):
            stack.backward_blocks(run_a, grad)


class TestMultiLayerPerHop:
    """Layer-by-hop execution over per-hop blocks vs full-graph stacks."""

    @pytest.mark.parametrize("model", MODEL_NAMES)
    def test_per_hop_forward_matches_full_graph_at_seeds(self, model, train_graph,
                                                         train_features):
        stack = MultiLayerModule.build(model, train_graph, dims=(DIM, DIM, DIM), seed=5)
        full = stack.forward_full(train_features).output
        seeds = np.array([1, 7, 19, 33, 50])
        blocks = NeighborSampler(train_graph, fanouts=(None, None), seed=2).sample_blocks(seeds)
        run = stack.forward_blocks(blocks, train_features)
        np.testing.assert_allclose(run.seed_outputs(), full[seeds], atol=1e-8)

    @pytest.mark.parametrize("model", MODEL_NAMES)
    def test_per_hop_gradients_match_full_graph(self, model, train_graph, train_features):
        """Seed-masked loss: per-hop backward through the hop boundaries
        accumulates the same parameter gradients as the full-graph stack."""
        seeds = np.array([1, 7, 19, 33, 50])
        out_grad = np.random.default_rng(8).standard_normal((len(seeds), DIM))

        stack = MultiLayerModule.build(model, train_graph, dims=(DIM, DIM, DIM), seed=5)
        full_run = stack.forward_full(train_features)
        stack.zero_grad()
        full_grad = np.zeros_like(full_run.output)
        full_grad[seeds] = out_grad
        stack.backward_full(full_run, full_grad)
        reference = {k: p.grad.copy() for k, p in stack.parameters_by_name().items()}

        stack.zero_grad()
        blocks = NeighborSampler(train_graph, fanouts=(None, None), seed=2).sample_blocks(seeds)
        run = stack.forward_blocks(blocks, train_features)
        inner = blocks[-1]
        block_grad = np.zeros((inner.num_nodes, DIM))
        block_grad[inner.seed_positions] = out_grad
        stack.backward_blocks(run, block_grad)
        for name, parameter in stack.parameters_by_name().items():
            np.testing.assert_allclose(parameter.grad, reference[name], atol=1e-8, err_msg=name)

    def test_inner_layers_aggregate_strictly_less(self, train_graph, train_features):
        """The point of per-hop execution: the innermost layer touches only
        the seeds' in-edges, not the merged frontier's."""
        stack = MultiLayerModule.build("rgcn", train_graph, dims=(DIM, DIM, DIM), seed=5)
        sampler = NeighborSampler(train_graph, fanouts=(None, None), seed=2)
        seeds = np.array([1, 7, 19, 33, 50])
        blocks = sampler.sample_blocks(seeds)
        run = stack.forward_blocks(blocks, train_features)
        merged_run = stack.forward_merged(sampler.sample(seeds), train_features)
        per_hop = stack.layer_edge_counts(run)
        merged = stack.layer_edge_counts(merged_run)
        assert all(h <= m for h, m in zip(per_hop, merged))
        assert per_hop[-1] < merged[-1]

    def test_trainer_drives_a_stack_per_hop(self, train_graph, train_features, train_labels):
        stack = MultiLayerModule.build("rgcn", train_graph, dims=(DIM, DIM, DIM), seed=5)
        trainer = MinibatchTrainer(
            stack, train_graph, train_features, train_labels,
            optimizer="adam", lr=0.02, batch_size=16, fanouts=(4, 4),
        )
        stats = trainer.train(4)
        curve = stats.loss_curve()
        assert curve[-1] < curve[0]
        assert len(stats.epochs[0].layer_edges) == 2
        # Layer 2 (seed side) aggregates over no more edges than layer 1.
        assert stats.epochs[0].layer_edges[1] <= stats.epochs[0].layer_edges[0]


class TestTrainerBehaviour:
    def test_loss_decreases_under_sampled_fanouts(self, train_graph, train_features,
                                                  train_labels):
        module = compile_model("rgcn", train_graph, in_dim=DIM, out_dim=DIM, seed=7)
        trainer = MinibatchTrainer(
            module, train_graph, train_features, train_labels,
            optimizer="adam", lr=0.02, batch_size=16, fanouts=(4,),
        )
        stats = trainer.train(6)
        curve = stats.loss_curve()
        assert curve[-1] < curve[0]

    def test_epoch_shuffles_are_deterministic_and_differ_by_epoch(self, train_graph,
                                                                  train_features, train_labels):
        module = compile_model("rgcn", train_graph, in_dim=DIM, out_dim=DIM, seed=7)
        trainer = MinibatchTrainer(module, train_graph, train_features, train_labels,
                                   batch_size=16, shuffle_seed=3)
        first_epoch = trainer._epoch_minibatches(0)
        replay = trainer._epoch_minibatches(0)
        for a, b in zip(first_epoch, replay):
            np.testing.assert_array_equal(a, b)
        second_epoch = trainer._epoch_minibatches(1)
        assert any(
            not np.array_equal(a, b) for a, b in zip(first_epoch, second_epoch)
        )
        # Every epoch covers the full training set exactly once.
        np.testing.assert_array_equal(
            np.sort(np.concatenate(first_epoch)), np.sort(trainer.train_ids)
        )

    def test_accumulation_windows_count_optimizer_steps(self, train_graph, train_features,
                                                        train_labels):
        module = compile_model("rgcn", train_graph, in_dim=DIM, out_dim=DIM, seed=7)
        trainer = MinibatchTrainer(module, train_graph, train_features, train_labels,
                                   batch_size=10, accumulation_steps=2)
        record = trainer.epoch()
        assert record.num_minibatches == 6
        assert record.num_steps == 3

    def test_epochs_resample_neighborhoods(self, train_graph, train_features, train_labels):
        module = compile_model("rgcn", train_graph, in_dim=DIM, out_dim=DIM, seed=7)
        trainer = MinibatchTrainer(module, train_graph, train_features, train_labels,
                                   batch_size=16, fanouts=(2,))
        trainer.train(3)
        assert trainer.sampler.epoch == 2  # one resample per epoch, reproducible indices

    def test_summary_reports_hit_rates_and_throughput(self, train_graph, train_features,
                                                      train_labels):
        module = compile_model("rgcn", train_graph, in_dim=DIM, out_dim=DIM, seed=7)
        trainer = MinibatchTrainer(module, train_graph, train_features, train_labels,
                                   batch_size=16, fanouts=(4,))
        trainer.train(2)
        summary = trainer.summary()
        assert summary["epochs"] == 2
        assert summary["seeds_per_s"] > 0
        assert 0.0 <= summary["sampler_hit_rate"] <= 1.0
        assert 0.0 <= summary["arena_hit_rate"] <= 1.0
        assert summary["arena_hit_rate"] > 0  # same-bucket blocks reuse pooled arenas

    def test_validation_errors(self, train_graph, train_features, train_labels):
        module = compile_model("rgcn", train_graph, in_dim=DIM, out_dim=DIM, seed=7)

        def build(**kwargs):
            return MinibatchTrainer(module, train_graph, train_features, train_labels, **kwargs)

        with pytest.raises(ValueError, match="batch_size"):
            build(batch_size=0)
        with pytest.raises(ValueError, match="accumulation_steps"):
            build(accumulation_steps=0)
        with pytest.raises(KeyError, match="objective"):
            build(objective="nope")
        with pytest.raises(KeyError, match="optimizer"):
            build(optimizer="nope")
        with pytest.raises(ValueError, match="unique"):
            build(train_ids=[0, 0, 1])
        with pytest.raises(ValueError, match="train_ids"):
            build(train_ids=[train_graph.num_nodes])
        with pytest.raises(ValueError, match="features"):
            MinibatchTrainer(module, train_graph, train_features[:-1], train_labels)
        with pytest.raises(ValueError, match="targets"):
            MinibatchTrainer(module, train_graph, train_features, train_labels[:-1])
        stack = MultiLayerModule.build("rgcn", train_graph, dims=(DIM, DIM, DIM), seed=5)
        with pytest.raises(ValueError, match="fanout"):
            MinibatchTrainer(stack, train_graph, train_features, train_labels, fanouts=(None,))
        with pytest.raises(ValueError, match="fanout"):
            # Merged execution needs the hops too: a 2-layer stack over a
            # 1-hop block starves the outer layer of edges.
            MinibatchTrainer(stack, train_graph, train_features, train_labels,
                             fanouts=(None,), per_hop=False)

    def test_merged_stack_training(self, train_graph, train_features, train_labels):
        """per_hop=False drives a stack over one merged block per minibatch —
        every layer pays the same aggregation work (the pre-per-hop regime)."""
        stack = MultiLayerModule.build("rgcn", train_graph, dims=(DIM, DIM, DIM), seed=5)
        trainer = MinibatchTrainer(
            stack, train_graph, train_features, train_labels,
            optimizer="adam", lr=0.02, batch_size=16, fanouts=(4, 4), per_hop=False,
        )
        record = trainer.epoch()
        assert len(record.layer_edges) == 2
        assert record.layer_edges[0] == record.layer_edges[1]

    def test_optimizer_instance_and_callable_objective_are_adopted(self, train_graph,
                                                                   train_features, train_labels):
        module = compile_model("rgcn", train_graph, in_dim=DIM, out_dim=DIM, seed=7)
        optimizer = optim.SGD(module.parameters(), lr=0.1, momentum=0.9)
        trainer = MinibatchTrainer(
            module, train_graph, train_features, train_labels,
            objective=softmax_cross_entropy, optimizer=optimizer, batch_size=20,
        )
        assert trainer.optimizer is optimizer
        trainer.epoch()
        with pytest.raises(ValueError, match="num_epochs"):
            trainer.train(0)

    def test_objective_validation_errors(self):
        rng = np.random.default_rng(0)
        rows = rng.standard_normal((4, 3))
        with pytest.raises(ValueError, match="2-D"):
            softmax_cross_entropy(rows[0], np.zeros(3, dtype=np.int64))
        with pytest.raises(ValueError, match="labels"):
            softmax_cross_entropy(rows, np.zeros(3, dtype=np.int64))
        with pytest.raises(ValueError, match="lie in"):
            softmax_cross_entropy(rows, np.full(4, 3))
        with pytest.raises(ValueError, match="share a shape"):
            mean_squared_error(rows, rows[:, :2])

    def test_train_on_a_subset_of_nodes(self, train_graph, train_features, train_labels):
        """train_ids restricts the loss to a seed subset (the usual split)."""
        module = compile_model("rgcn", train_graph, in_dim=DIM, out_dim=DIM, seed=7)
        train_ids = np.arange(0, 30)
        trainer = MinibatchTrainer(module, train_graph, train_features, train_labels,
                                   train_ids=train_ids, batch_size=None,
                                   accumulation_steps=None, lr=LR)
        trainer.epoch()

        reference = compile_model("rgcn", train_graph, in_dim=DIM, out_dim=DIM, seed=7)
        reference.zero_grad()
        logits = reference.forward(train_features)[reference.output_name]
        _, grad_rows = softmax_cross_entropy(logits[train_ids], train_labels[train_ids])
        grad = np.zeros_like(logits)
        grad[train_ids] = grad_rows / len(train_ids)
        reference.backward({reference.output_name: grad})
        for name, parameter in module.parameters_by_name.items():
            np.testing.assert_allclose(
                parameter.grad, reference.parameters_by_name[name].grad,
                rtol=1e-10, atol=1e-12, err_msg=name,
            )
