"""Bit-identity lockdown for data-parallel sharded training.

The central contract of :class:`repro.train.distributed.ShardedTrainer`:
splitting an epoch's minibatches over N workers changes *where* gradients
are computed, never *what* is computed.  Under exact sampling
(``fanouts=(None,)``, where the sampler RNG cannot influence blocks), the
equivalence matrix {1, 2, 4} shards x {RGCN, RGAT, HGT} x {full-epoch,
windowed} accumulation pins every shard count to the 1-worker
:class:`~repro.train.trainer.MinibatchTrainer` with ``np.array_equal`` — no
tolerance — on post-training parameters, final window gradients, and loss
curves, through both the in-process and the shared-memory collective.

The mechanism under test: per-minibatch gradient leaves are all-reduced as
zero-padded rows (exact — each row has one non-zero contributor) and reduced
through the same canonical pairwise tree the single worker uses, so the
floating-point association is a function of the window's global minibatch
order, never of the shard count.

Also locked here: the sampler's negative-epoch/shard validation and the
empty-epoch / zero-seed-tail-shard behaviour (the satellite bugfixes), and
the collectives' own unit semantics.
"""

import numpy as np
import pytest

from repro.frontend import compile_model
from repro.graph import NeighborSampler, random_hetero_graph
from repro.graph.generators import random_labels
from repro.models import MODEL_NAMES
from repro.train import (
    LocalCollective,
    MinibatchTrainer,
    SharedMemoryCollective,
    ShardedTrainer,
    make_collective,
    shard_minibatches,
    tree_reduce,
)

DIM = 8
LR = 0.5
BATCH = 15
EPOCHS = 2


@pytest.fixture(scope="module")
def train_graph():
    return random_hetero_graph(
        num_nodes=60, num_edges=300, num_node_types=3, num_edge_types=6, seed=3, name="train"
    )


@pytest.fixture(scope="module")
def train_features(train_graph):
    return np.random.default_rng(0).standard_normal((train_graph.num_nodes, DIM))


@pytest.fixture(scope="module")
def train_labels(train_graph):
    return random_labels(train_graph, DIM, seed=1)


def make_factory(graph, model="rgcn", seed=7):
    return lambda: compile_model(model, graph, in_dim=DIM, out_dim=DIM, seed=seed)


def reference_trainer(graph, features, labels, model="rgcn", accumulation=2, optimizer="adam"):
    trainer = MinibatchTrainer(
        make_factory(graph, model)(), graph, features, labels,
        optimizer=optimizer, lr=LR, batch_size=BATCH,
        accumulation_steps=accumulation, fanouts=(None,),
    )
    trainer.train(EPOCHS)
    return trainer


def sharded_trainer(graph, features, labels, model="rgcn", shards=2, accumulation=2,
                    collective="local", optimizer="adam", epochs=EPOCHS):
    trainer = ShardedTrainer(
        make_factory(graph, model), graph, features, labels,
        num_shards=shards, collective=collective,
        optimizer=optimizer, lr=LR, batch_size=BATCH,
        accumulation_steps=accumulation, fanouts=(None,),
    )
    trainer.train(epochs)
    return trainer


class TestBitIdentityMatrix:
    """{1, 2, 4} shards x models x accumulation modes vs one worker."""

    @pytest.mark.parametrize("model", MODEL_NAMES)
    @pytest.mark.parametrize("shards", [1, 2, 4])
    @pytest.mark.parametrize("accumulation", [None, 2])
    def test_local_collective_matches_one_worker_bitwise(
        self, model, shards, accumulation, train_graph, train_features, train_labels
    ):
        reference = reference_trainer(
            train_graph, train_features, train_labels, model=model, accumulation=accumulation
        )
        sharded = sharded_trainer(
            train_graph, train_features, train_labels, model=model,
            shards=shards, accumulation=accumulation,
        )
        expected = reference.flat_parameters()
        for replica in sharded.trainers:
            assert np.array_equal(replica.flat_parameters(), expected)
        # Final window gradients survive on the replicas' parameters too.
        for replica in sharded.trainers:
            assert np.array_equal(replica.flat_gradient(), reference.flat_gradient())
        # Loss *telemetry* is a scalar running sum whose association follows
        # the shard layout (per-rank partials, then the rank tree); it is
        # fp-tight, not bitwise — the training state above is the bit contract.
        np.testing.assert_allclose(
            sharded.stats.loss_curve(), reference.stats.loss_curve(), rtol=1e-12
        )

    @pytest.mark.parametrize("model", MODEL_NAMES)
    @pytest.mark.parametrize("accumulation", [None, 2])
    def test_shared_memory_collective_matches_one_worker_bitwise(
        self, model, accumulation, train_graph, train_features, train_labels
    ):
        reference = reference_trainer(
            train_graph, train_features, train_labels, model=model, accumulation=accumulation
        )
        sharded = sharded_trainer(
            train_graph, train_features, train_labels, model=model,
            shards=2, accumulation=accumulation, collective="shm",
        )
        expected = reference.flat_parameters()
        for replica in sharded.trainers:
            assert np.array_equal(replica.flat_parameters(), expected)
        np.testing.assert_allclose(
            sharded.stats.loss_curve(), reference.stats.loss_curve(), rtol=1e-12
        )

    def test_shared_memory_four_shards(self, train_graph, train_features, train_labels):
        reference = reference_trainer(train_graph, train_features, train_labels)
        sharded = sharded_trainer(
            train_graph, train_features, train_labels, shards=4, collective="shm"
        )
        assert np.array_equal(
            sharded.trainers[0].flat_parameters(), reference.flat_parameters()
        )

    def test_sgd_momentum_free_path_matches(self, train_graph, train_features, train_labels):
        reference = reference_trainer(
            train_graph, train_features, train_labels, optimizer="sgd"
        )
        sharded = sharded_trainer(
            train_graph, train_features, train_labels, shards=2, optimizer="sgd"
        )
        assert np.array_equal(
            sharded.trainers[0].flat_parameters(), reference.flat_parameters()
        )

    def test_replicas_stay_in_sync(self, train_graph, train_features, train_labels):
        """Every replica ends every run holding identical parameters."""
        sharded = sharded_trainer(train_graph, train_features, train_labels, shards=4)
        first = sharded.trainers[0].flat_parameters()
        for replica in sharded.trainers[1:]:
            assert np.array_equal(replica.flat_parameters(), first)

    def test_repeated_train_calls_continue_bit_identically(
        self, train_graph, train_features, train_labels
    ):
        """train(1); train(1) == train(2): epoch streams and optimizer state
        (including the shm run's marshalled buffers) carry across calls."""
        reference = reference_trainer(train_graph, train_features, train_labels)
        for collective in ("local", "shm"):
            sharded = ShardedTrainer(
                make_factory(train_graph), train_graph, train_features, train_labels,
                num_shards=2, collective=collective, optimizer="adam", lr=LR,
                batch_size=BATCH, accumulation_steps=2, fanouts=(None,),
            )
            sharded.train(1)
            sharded.train(1)
            assert np.array_equal(
                sharded.trainers[0].flat_parameters(), reference.flat_parameters()
            )


class TestShardedStats:
    def test_global_epoch_records_match_one_worker(
        self, train_graph, train_features, train_labels
    ):
        reference = reference_trainer(train_graph, train_features, train_labels)
        sharded = sharded_trainer(train_graph, train_features, train_labels, shards=2)
        for ours, theirs in zip(sharded.stats.epochs, reference.stats.epochs):
            assert ours.loss == pytest.approx(theirs.loss, rel=1e-12)
            assert ours.num_seeds == theirs.num_seeds
            assert ours.num_minibatches == theirs.num_minibatches
            assert ours.num_steps == theirs.num_steps
            assert ours.block_nodes == theirs.block_nodes
            assert ours.block_edges == theirs.block_edges
            assert ours.layer_edges == theirs.layer_edges

    def test_per_shard_records_partition_the_work(
        self, train_graph, train_features, train_labels
    ):
        sharded = sharded_trainer(train_graph, train_features, train_labels, shards=2)
        for epoch in range(EPOCHS):
            records = [r for r in sharded.stats.shard_epochs if r.epoch == epoch]
            assert len(records) == 2
            assert sum(r.num_seeds for r in records) == train_graph.num_nodes
            assert sum(r.num_minibatches for r in records) == 4  # ceil(60 / 15)

    def test_summary_reports_collective_and_shards(
        self, train_graph, train_features, train_labels
    ):
        sharded = sharded_trainer(train_graph, train_features, train_labels, shards=2)
        summary = sharded.summary()
        assert summary["shards"] == 2
        assert summary["all_reduce_ops"] > 0
        assert summary["all_reduce_mb"] > 0
        assert summary["aggregate_seeds_per_s"] >= 0


class TestEdgeCasesAndValidation:
    """The satellite fixes: negative epoch/shard, empty epochs, tail shards."""

    def test_negative_epoch_raises_named_error(self, train_graph):
        sampler = NeighborSampler(train_graph, fanouts=(None,))
        with pytest.raises(ValueError, match="epoch must be >= 0.*got -1"):
            sampler.resample(-1)

    def test_negative_shard_raises_named_error(self, train_graph):
        sampler = NeighborSampler(train_graph, fanouts=(None,))
        with pytest.raises(ValueError, match="shard must be >= 0.*got -3"):
            sampler.resample(0, shard=-3)

    def test_negative_constructor_shard_raises(self, train_graph):
        with pytest.raises(ValueError, match="shard must be >= 0"):
            NeighborSampler(train_graph, fanouts=(None,), shard=-1)

    def test_empty_train_ids_fails_fast_with_named_error(
        self, train_graph, train_features, train_labels
    ):
        with pytest.raises(ValueError, match="at least one seed node"):
            MinibatchTrainer(
                compile_model("rgcn", train_graph, in_dim=DIM, out_dim=DIM, seed=7),
                train_graph, train_features, train_labels, train_ids=[],
            )

    def test_zero_seed_window_normalizer_rejected(
        self, train_graph, train_features, train_labels
    ):
        trainer = MinibatchTrainer(
            compile_model("rgcn", train_graph, in_dim=DIM, out_dim=DIM, seed=7),
            train_graph, train_features, train_labels, fanouts=(None,),
        )
        with pytest.raises(ValueError, match="window seed count must be >= 1"):
            trainer.minibatch_gradient(np.array([0, 1]), 0)

    def test_more_shards_than_minibatches_stays_bit_identical(
        self, train_graph, train_features, train_labels
    ):
        """Tail shards own zero minibatches in some (here: all) epochs; they
        must idle through the collectives, not crash, and stay in sync."""
        reference = MinibatchTrainer(
            make_factory(train_graph)(), train_graph, train_features, train_labels,
            optimizer="adam", lr=LR, batch_size=30, accumulation_steps=1, fanouts=(None,),
        )
        reference.train(EPOCHS)
        sharded = ShardedTrainer(
            make_factory(train_graph), train_graph, train_features, train_labels,
            num_shards=4, collective="local", optimizer="adam", lr=LR,
            batch_size=30, accumulation_steps=1, fanouts=(None,),
        )
        sharded.train(EPOCHS)
        expected = reference.flat_parameters()
        for replica in sharded.trainers:
            assert np.array_equal(replica.flat_parameters(), expected)
        idle = [r for r in sharded.stats.shard_epochs if r.num_minibatches == 0]
        assert idle, "expected at least one zero-minibatch tail shard record"

    def test_invalid_num_shards_rejected(self, train_graph, train_features, train_labels):
        with pytest.raises(ValueError, match="num_shards must be >= 1"):
            ShardedTrainer(
                make_factory(train_graph), train_graph, train_features, train_labels,
                num_shards=0,
            )

    def test_optimizer_instances_rejected(self, train_graph, train_features, train_labels):
        from repro.tensor import optim

        module = compile_model("rgcn", train_graph, in_dim=DIM, out_dim=DIM, seed=7)
        with pytest.raises(TypeError, match="optimizer \\*name\\*"):
            ShardedTrainer(
                make_factory(train_graph), train_graph, train_features, train_labels,
                num_shards=2, optimizer=optim.SGD(module.parameters(), lr=LR),
            )

    def test_unknown_collective_rejected(self, train_graph, train_features, train_labels):
        with pytest.raises(KeyError, match="unknown collective"):
            ShardedTrainer(
                make_factory(train_graph), train_graph, train_features, train_labels,
                num_shards=2, collective="nccl",
            )

    def test_worker_failure_surfaces_not_hangs(
        self, train_graph, train_features, train_labels
    ):
        """A worker raising mid-epoch must abort the rendezvous and re-raise
        in the driver, not deadlock the surviving ranks at the barrier."""
        sharded = ShardedTrainer(
            make_factory(train_graph), train_graph, train_features, train_labels,
            num_shards=2, collective="local", batch_size=BATCH, fanouts=(None,),
        )

        def explode(seeds, normalizer):  # sabotage rank 1 only
            raise RuntimeError("injected worker failure")

        sharded._trainers[1].minibatch_gradient = explode
        with pytest.raises(RuntimeError, match="injected worker failure"):
            sharded.train(1)


class TestShardMinibatches:
    def test_round_robin_partition(self):
        parts = shard_minibatches(10, 4)
        assert [list(p) for p in parts] == [[0, 4, 8], [1, 5, 9], [2, 6], [3, 7]]

    def test_partition_is_disjoint_and_covering(self):
        parts = shard_minibatches(23, 5)
        merged = np.sort(np.concatenate(parts))
        assert np.array_equal(merged, np.arange(23))

    def test_empty_and_invalid(self):
        assert [list(p) for p in shard_minibatches(0, 3)] == [[], [], []]
        with pytest.raises(ValueError, match="num_minibatches must be >= 0"):
            shard_minibatches(-1, 2)
        with pytest.raises(ValueError, match="num_shards must be >= 1"):
            shard_minibatches(4, 0)


class TestCollectives:
    """Unit semantics of the collective layer itself."""

    def test_tree_reduce_matches_sum_and_is_associatively_canonical(self):
        rng = np.random.default_rng(5)
        arrays = [rng.normal(size=7) for _ in range(6)]
        out = tree_reduce(arrays)
        assert np.allclose(out, np.sum(arrays, axis=0))
        # Canonical association: ((a+b)+(c+d)) + ((e+f)) for six inputs.
        expected = ((arrays[0] + arrays[1]) + (arrays[2] + arrays[3])) + (arrays[4] + arrays[5])
        assert np.array_equal(out, expected)

    def test_tree_reduce_empty_rejected(self):
        with pytest.raises(ValueError, match="at least one array"):
            tree_reduce([])

    def test_local_collective_single_rank(self):
        collective = LocalCollective(1)
        out = collective.all_reduce(0, np.array([1.0, 2.0]))
        assert np.array_equal(out, [1.0, 2.0])
        assert collective.stats.operations == 1

    def test_local_collective_threads_sum_and_broadcast(self):
        import threading

        collective = LocalCollective(3)
        results = [None] * 3
        received = [None] * 3

        def worker(rank):
            results[rank] = np.array(
                collective.all_reduce(rank, np.full(4, float(rank + 1)))
            )
            received[rank] = np.array(
                collective.broadcast(rank, np.full(4, float(rank)), root=2)
            )

        threads = [threading.Thread(target=worker, args=(r,)) for r in range(3)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        for rank in range(3):
            assert np.array_equal(results[rank], np.full(4, 6.0))
            assert np.array_equal(received[rank], np.full(4, 2.0))
        assert collective.stats.operations == 1
        assert collective.stats.bytes_moved == 3 * 4 * 8

    def test_shared_memory_capacity_enforced(self):
        collective = SharedMemoryCollective(1, capacity=4)
        with pytest.raises(ValueError, match="exceeds the collective's capacity"):
            collective.all_reduce(0, np.zeros(5))
        with pytest.raises(ValueError, match="positive element capacity"):
            SharedMemoryCollective(2)

    def test_shared_memory_single_rank_round_trip(self):
        collective = SharedMemoryCollective(1, capacity=6)
        out = collective.all_reduce(0, np.arange(6.0).reshape(2, 3))
        assert np.array_equal(out, np.arange(6.0).reshape(2, 3))
        assert collective.stats.operations == 1

    def test_rank_validation(self):
        collective = LocalCollective(2)
        with pytest.raises(ValueError, match="rank must lie in"):
            collective.all_reduce(2, np.zeros(1))
        with pytest.raises(ValueError, match="world_size must be >= 1"):
            LocalCollective(0)

    def test_make_collective_registry(self):
        assert isinstance(make_collective("local", 2), LocalCollective)
        assert isinstance(make_collective("shm", 2, capacity=8), SharedMemoryCollective)
        assert isinstance(
            make_collective("multiprocessing", 2, capacity=8), SharedMemoryCollective
        )
        with pytest.raises(KeyError, match="unknown collective 'mpi'"):
            make_collective("mpi", 2)
