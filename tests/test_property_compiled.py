"""Property-based tests: generated kernels agree with the reference on random graphs."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.frontend import compile_model
from repro.frontend.config import CONFIGURATIONS
from repro.graph import random_hetero_graph
from repro.models import REFERENCE_CLASSES

graph_params = st.tuples(
    st.integers(min_value=8, max_value=40),    # nodes
    st.integers(min_value=8, max_value=120),   # edges
    st.integers(min_value=1, max_value=3),     # node types
    st.integers(min_value=1, max_value=5),     # edge types
    st.integers(min_value=0, max_value=10_000),  # seed
)


def _check_model(model, config_label, nodes, edges, ntypes, etypes, seed, dim=4):
    edges = max(edges, etypes)
    nodes = max(nodes, ntypes)
    graph = random_hetero_graph(nodes, edges, ntypes, etypes, seed=seed)
    features = np.random.default_rng(seed + 1).standard_normal((graph.num_nodes, dim))
    module = compile_model(model, graph, in_dim=dim, out_dim=dim,
                           options=CONFIGURATIONS[config_label], seed=seed % 100)
    reference = REFERENCE_CLASSES[model](graph, dim, dim, seed=seed % 100)
    reference.load_parameters({k: p.data for k, p in module.parameters_by_name.items()})
    out = module.forward(features)
    ref = reference.forward(features)
    key = next(iter(out))
    np.testing.assert_allclose(out[key], ref[key].data, atol=1e-8)


class TestCompiledMatchesReferenceOnRandomGraphs:
    @given(graph_params)
    @settings(max_examples=10, deadline=None)
    def test_rgcn_compact_reorder(self, params):
        _check_model("rgcn", "C+R", *params)

    @given(graph_params)
    @settings(max_examples=10, deadline=None)
    def test_rgat_compact(self, params):
        _check_model("rgat", "C", *params)

    @given(graph_params)
    @settings(max_examples=10, deadline=None)
    def test_rgat_reorder(self, params):
        _check_model("rgat", "R", *params)

    @given(graph_params)
    @settings(max_examples=8, deadline=None)
    def test_hgt_compact_reorder(self, params):
        _check_model("hgt", "C+R", *params)


class TestStructuralProperties:
    @given(graph_params)
    @settings(max_examples=15, deadline=None)
    def test_attention_sums_to_one_per_destination(self, params):
        nodes, edges, ntypes, etypes, seed = params
        edges = max(edges, etypes)
        nodes = max(nodes, ntypes)
        graph = random_hetero_graph(nodes, edges, ntypes, etypes, seed=seed)
        features = np.random.default_rng(seed).standard_normal((graph.num_nodes, 4))
        module = compile_model("rgat", graph, in_dim=4, out_dim=4, options=CONFIGURATIONS["U"])
        module.forward(features)
        att = module._last_env["att"]
        sums = np.zeros(graph.num_nodes)
        np.add.at(sums, graph.edge_dst, att)
        has_incoming = np.bincount(graph.edge_dst, minlength=graph.num_nodes) > 0
        np.testing.assert_allclose(sums[has_incoming], 1.0, atol=1e-9)

    @given(graph_params)
    @settings(max_examples=15, deadline=None)
    def test_compact_buffer_has_one_row_per_unique_pair(self, params):
        nodes, edges, ntypes, etypes, seed = params
        edges = max(edges, etypes)
        nodes = max(nodes, ntypes)
        graph = random_hetero_graph(nodes, edges, ntypes, etypes, seed=seed)
        features = np.random.default_rng(seed).standard_normal((graph.num_nodes, 4))
        module = compile_model("rgat", graph, in_dim=4, out_dim=4, options=CONFIGURATIONS["C"])
        module.forward(features)
        hs = module._last_env["hs"]
        assert hs.shape[0] == graph.compaction.num_unique
