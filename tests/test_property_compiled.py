"""Property-based tests: generated kernels agree with the reference on random graphs.

The ``TestDifferentialDesignSpaceSweep`` class at the bottom is the tuner's
lock-down harness: every configuration the autotuner can reach — the four
paper configurations × elementwise fusion × memory planner, plus schedule
variants — must produce forward outputs and parameter gradients that match
the eager reference within dtype tolerance.  Run it alone with
``pytest -m differential``.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.frontend import compile_model
from repro.frontend.config import CONFIGURATIONS
from repro.graph import random_hetero_graph
from repro.models import MODEL_NAMES, REFERENCE_CLASSES

graph_params = st.tuples(
    st.integers(min_value=8, max_value=40),    # nodes
    st.integers(min_value=8, max_value=120),   # edges
    st.integers(min_value=1, max_value=3),     # node types
    st.integers(min_value=1, max_value=5),     # edge types
    st.integers(min_value=0, max_value=10_000),  # seed
)


def _check_model(model, config_label, nodes, edges, ntypes, etypes, seed, dim=4):
    edges = max(edges, etypes)
    nodes = max(nodes, ntypes)
    graph = random_hetero_graph(nodes, edges, ntypes, etypes, seed=seed)
    features = np.random.default_rng(seed + 1).standard_normal((graph.num_nodes, dim))
    module = compile_model(model, graph, in_dim=dim, out_dim=dim,
                           options=CONFIGURATIONS[config_label], seed=seed % 100)
    reference = REFERENCE_CLASSES[model](graph, dim, dim, seed=seed % 100)
    reference.load_parameters({k: p.data for k, p in module.parameters_by_name.items()})
    out = module.forward(features)
    ref = reference.forward(features)
    key = next(iter(out))
    np.testing.assert_allclose(out[key], ref[key].data, atol=1e-8)


class TestCompiledMatchesReferenceOnRandomGraphs:
    @given(graph_params)
    @settings(max_examples=10, deadline=None)
    def test_rgcn_compact_reorder(self, params):
        _check_model("rgcn", "C+R", *params)

    @given(graph_params)
    @settings(max_examples=10, deadline=None)
    def test_rgat_compact(self, params):
        _check_model("rgat", "C", *params)

    @given(graph_params)
    @settings(max_examples=10, deadline=None)
    def test_rgat_reorder(self, params):
        _check_model("rgat", "R", *params)

    @given(graph_params)
    @settings(max_examples=8, deadline=None)
    def test_hgt_compact_reorder(self, params):
        _check_model("hgt", "C+R", *params)


class TestStructuralProperties:
    @given(graph_params)
    @settings(max_examples=15, deadline=None)
    def test_attention_sums_to_one_per_destination(self, params):
        nodes, edges, ntypes, etypes, seed = params
        edges = max(edges, etypes)
        nodes = max(nodes, ntypes)
        graph = random_hetero_graph(nodes, edges, ntypes, etypes, seed=seed)
        features = np.random.default_rng(seed).standard_normal((graph.num_nodes, 4))
        module = compile_model("rgat", graph, in_dim=4, out_dim=4, options=CONFIGURATIONS["U"])
        module.forward(features)
        att = module._last_env["att"]
        sums = np.zeros(graph.num_nodes)
        np.add.at(sums, graph.edge_dst, att)
        has_incoming = np.bincount(graph.edge_dst, minlength=graph.num_nodes) > 0
        np.testing.assert_allclose(sums[has_incoming], 1.0, atol=1e-9)

    @given(graph_params)
    @settings(max_examples=15, deadline=None)
    def test_compact_buffer_has_one_row_per_unique_pair(self, params):
        nodes, edges, ntypes, etypes, seed = params
        edges = max(edges, etypes)
        nodes = max(nodes, ntypes)
        graph = random_hetero_graph(nodes, edges, ntypes, etypes, seed=seed)
        features = np.random.default_rng(seed).standard_normal((graph.num_nodes, 4))
        module = compile_model("rgat", graph, in_dim=4, out_dim=4, options=CONFIGURATIONS["C"])
        module.forward(features)
        hs = module._last_env["hs"]
        assert hs.shape[0] == graph.compaction.num_unique


# ----------------------------------------------------------------------
# Differential harness over the tuner-reachable design space
# ----------------------------------------------------------------------
#: Schedule points exercised on top of the pass-level sweep; schedules must
#: never change numerics, only the cost model and the emitted CUDA text.
_SCHEDULE_VARIANTS = {
    "gemm8x4": dict(gemm_tile_size=8, gemm_coarsening=4),
    "gemm32x2": dict(gemm_tile_size=32, gemm_coarsening=2),
    "trav32-nopartial": dict(traversal_rows_per_block=32, traversal_partial_aggregation=False),
    "trav512": dict(traversal_rows_per_block=512),
}


def _tuner_reachable_configurations():
    """Every design-space point class the autotuner can emit, as test params."""
    for label, base in CONFIGURATIONS.items():
        for fuse in (False, True):
            for planner in (False, True):
                options = base.with_(fuse_elementwise=fuse, enable_memory_planning=planner)
                yield pytest.param(options, id=f"{label}-fuse{int(fuse)}-plan{int(planner)}")
    for schedule_id, overrides in _SCHEDULE_VARIANTS.items():
        options = CONFIGURATIONS["C+R"].with_(fuse_elementwise=True, **overrides)
        yield pytest.param(options, id=f"C+R-fuse-{schedule_id}")


#: Small random graphs (nodes, edges, node types, edge types, seed) — sized so
#: the full sweep stays fast while still exercising multi-type segmentation.
_DIFFERENTIAL_GRAPH = (24, 90, 2, 4, 13)


@pytest.mark.differential
class TestDifferentialDesignSpaceSweep:
    @pytest.mark.parametrize("options", list(_tuner_reachable_configurations()))
    @pytest.mark.parametrize("model", MODEL_NAMES)
    def test_forward_and_backward_match_reference(self, model, options, dim=4):
        nodes, edges, ntypes, etypes, seed = _DIFFERENTIAL_GRAPH
        graph = random_hetero_graph(nodes, edges, ntypes, etypes, seed=seed)
        rng = np.random.default_rng(seed + 1)
        features = rng.standard_normal((graph.num_nodes, dim))

        module = compile_model(model, graph, in_dim=dim, out_dim=dim, options=options, seed=seed % 50)
        reference = REFERENCE_CLASSES[model](graph, dim, dim, seed=seed % 50)
        reference.load_parameters({k: p.data for k, p in module.parameters_by_name.items()})

        out = module.forward(features)
        ref_out = reference.forward(features)
        key = next(iter(out))
        np.testing.assert_allclose(out[key], ref_out[key].data, atol=1e-8)

        upstream = rng.standard_normal(out[key].shape)
        grads = module.backward({key: upstream})
        ref_out[key].backward(upstream)
        ref_params = reference.named_parameter_dict()
        assert set(grads) == set(module.parameters_by_name)
        for name, grad in grads.items():
            assert ref_params[name].grad is not None, name
            np.testing.assert_allclose(grad, ref_params[name].grad, atol=1e-7, err_msg=name)

    def test_sweep_covers_every_pass_point_of_the_tuning_space(self):
        """The sweep's pass-level coverage matches what the tuner can reach."""
        from repro.tuner import TuningSpace

        sweep_keys = set()
        for param in _tuner_reachable_configurations():
            options = param.values[0]
            sweep_keys.add(
                (
                    options.compact_materialization,
                    options.linear_operator_reordering,
                    options.fuse_elementwise,
                )
            )
        space_keys = {
            (o.compact_materialization, o.linear_operator_reordering, o.fuse_elementwise)
            for o in TuningSpace().pass_candidates()
        }
        assert space_keys <= sweep_keys


# ----------------------------------------------------------------------
# Backend differential: python-codegen / mixed ≡ python-interp, bit for bit
# ----------------------------------------------------------------------
@pytest.mark.differential
class TestBackendDifferentialSweep:
    """The whole-plan codegen and mixed backends against the interp backend.

    Stronger than the reference sweep above: all three backends run the *same*
    numpy operations in the same order on the same values, so outputs,
    parameter gradients, and input gradients must match bit for bit
    (``tobytes`` equality, not allclose) on every tuner-reachable
    configuration of every model.  The mixed backend additionally derives its
    per-kernel assignment from the graph's workload here, so the cost-model
    routing path is what the sweep exercises.
    """

    @pytest.mark.parametrize("options", list(_tuner_reachable_configurations()))
    @pytest.mark.parametrize("model", MODEL_NAMES)
    def test_codegen_bit_identical_to_interp(self, model, options, dim=4):
        nodes, edges, ntypes, etypes, seed = _DIFFERENTIAL_GRAPH
        graph = random_hetero_graph(nodes, edges, ntypes, etypes, seed=seed)
        rng = np.random.default_rng(seed + 2)
        features = rng.standard_normal((graph.num_nodes, dim))
        upstream = None

        outs, grads, input_grads = {}, {}, {}
        for backend in ("python-interp", "python-codegen", "mixed"):
            module = compile_model(
                model, graph, in_dim=dim, out_dim=dim,
                options=options.with_(backend=backend), seed=seed % 50,
            )
            assert module.backend == backend
            out = module.forward(features)
            if upstream is None:
                key = next(iter(out))
                upstream = np.random.default_rng(seed + 3).standard_normal(out[key].shape)
            module.backward({key: upstream})
            outs[backend] = out
            grads[backend] = {
                name: p.grad.copy() for name, p in module.parameters_by_name.items()
            }
            input_grads[backend] = {
                name: grad.copy()
                for name, grad in module.default_binding.input_gradients().items()
                if grad is not None
            }

        for backend in ("python-codegen", "mixed"):
            for name in outs["python-interp"]:
                assert (
                    outs["python-interp"][name].tobytes()
                    == outs[backend][name].tobytes()
                ), f"forward output {name} diverged on {backend}"
            assert set(grads["python-interp"]) == set(grads[backend])
            for name in grads["python-interp"]:
                assert (
                    grads["python-interp"][name].tobytes()
                    == grads[backend][name].tobytes()
                ), f"parameter gradient {name} diverged on {backend}"
            assert set(input_grads["python-interp"]) == set(input_grads[backend])
            for name in input_grads["python-interp"]:
                assert (
                    input_grads["python-interp"][name].tobytes()
                    == input_grads[backend][name].tobytes()
                ), f"input gradient {name} diverged on {backend}"
