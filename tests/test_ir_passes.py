"""Tests of the inter-op passes: reordering, compact materialization, DCE."""


from repro.frontend.config import CompilerOptions
from repro.ir.inter_op import OpKind, Space
from repro.ir.inter_op.passes import (
    CompactMaterializationPass,
    DeadCodeEliminationPass,
    LinearOperatorReorderingPass,
    PassManager,
    default_pipeline,
)
from repro.models import build_program


class TestDeadCodeElimination:
    def test_removes_unconsumed_operator(self):
        program = build_program("rgat")
        # attt's producer chain is alive initially.
        before = len(program.operators)
        # Mark nothing extra; DCE on a fully-live program removes nothing.
        result = DeadCodeEliminationPass().run(program.clone())
        assert len(result.operators) == before

    def test_removes_operators_unreachable_from_outputs(self):
        program = build_program("rgat").clone()
        # Make 'out' no longer depend on the attention branch by marking the
        # attention value itself as the only output of interest.
        for value in program.values.values():
            value.is_output = value.name == "hs"
        result = DeadCodeEliminationPass().run(program)
        kinds = [op.kind for op in result.operators]
        assert OpKind.AGGREGATE not in kinds
        assert OpKind.TYPED_LINEAR in kinds


class TestLinearOperatorReordering:
    def test_rgat_reordering_creates_weight_products_and_removes_ht(self):
        program = build_program("rgat")
        optimized = PassManager([LinearOperatorReorderingPass(), DeadCodeEliminationPass()]).run(program)
        assert optimized.count_kind(OpKind.WEIGHT_PRODUCT) == 2
        # The destination-side projection (ht) is only needed for the
        # attention term; after reordering it is dead.
        assert "ht" not in {op.output for op in optimized.operators}
        # The message projection (hs) must survive: it feeds aggregation.
        assert "hs" in {op.output for op in optimized.operators}
        assert optimized.count_kind(OpKind.TYPED_LINEAR) == 1
        assert optimized.metadata["reordered_operators"] == 2

    def test_rgat_vec_dots_now_read_raw_features(self):
        optimized = PassManager([LinearOperatorReorderingPass()]).run(build_program("rgat"))
        vec_dots = [op for op in optimized.operators if op.kind is OpKind.TYPED_VEC_DOT]
        assert len(vec_dots) == 2
        for op in vec_dots:
            assert op.inputs[0] == "h"

    def test_hgt_reordering_composes_node_and_edge_type_weights(self):
        program = build_program("hgt")
        optimized = PassManager([LinearOperatorReorderingPass(), DeadCodeEliminationPass()]).run(program)
        products = [op for op in optimized.operators if op.kind is OpKind.WEIGHT_PRODUCT]
        assert len(products) == 2  # W_K @ W_ATT and W_V @ W_MSG
        assert any(op.attrs.get("compose") == "src_ntype_x_etype" for op in products)
        outputs = {op.output for op in optimized.operators}
        assert "K" not in outputs and "V" not in outputs  # both projections are dead
        assert "Q" in outputs  # the query projection cannot be folded

    def test_rgcn_is_unchanged_by_reordering(self):
        program = build_program("rgcn")
        optimized = PassManager([LinearOperatorReorderingPass()]).run(program)
        assert optimized.count_kind(OpKind.WEIGHT_PRODUCT) == 0
        assert len(optimized.operators) == len(program.operators)

    def test_reordering_profitability_estimate_positive_for_large_graphs(self):
        class Workload:
            num_edges = 100_000
            num_edge_types = 50

        saved = LinearOperatorReorderingPass.estimated_multiplies_saved(Workload(), 64, 64)
        assert saved > 0


class TestCompactMaterialization:
    def test_rgat_messages_become_compact(self):
        optimized = PassManager([CompactMaterializationPass()]).run(build_program("rgat"))
        assert optimized.values["hs"].space is Space.COMPACT
        assert optimized.values["atts"].space is Space.COMPACT
        # Destination-dependent values stay per-edge.
        assert optimized.values["ht"].space is Space.EDGE
        assert optimized.values["attt"].space is Space.EDGE
        assert optimized.values["att_raw"].space is Space.EDGE
        assert "hs" in optimized.metadata["compacted_values"]

    def test_hgt_messages_become_compact(self):
        optimized = PassManager([CompactMaterializationPass()]).run(build_program("hgt"))
        assert optimized.values["k_att"].space is Space.COMPACT
        assert optimized.values["msg"].space is Space.COMPACT
        assert optimized.values["att_raw"].space is Space.EDGE

    def test_outputs_are_never_compacted(self):
        program = build_program("rgat")
        program.values["hs"].is_output = True
        optimized = PassManager([CompactMaterializationPass()]).run(program)
        assert optimized.values["hs"].space is Space.EDGE

    def test_gather_dst_results_are_never_compacted(self):
        optimized = PassManager([CompactMaterializationPass()]).run(build_program("rgat"))
        assert optimized.values["att_sum_edges"].space is Space.EDGE

    def test_compaction_composes_with_reordering(self):
        pipeline = default_pipeline(enable_compaction=True, enable_reordering=True)
        optimized = pipeline.run(build_program("rgat"))
        assert optimized.values["atts"].space is Space.COMPACT
        assert optimized.metadata["compaction_enabled"] is True
        assert "linear_operator_reordering" in optimized.metadata["applied_passes"]
        assert "compact_materialization" in optimized.metadata["applied_passes"]


class TestPassManager:
    def test_pass_manager_does_not_mutate_input(self):
        program = build_program("rgat")
        default_pipeline(True, True).run(program)
        assert program.values["hs"].space is Space.EDGE
        assert program.count_kind(OpKind.WEIGHT_PRODUCT) == 0

    def test_applied_passes_recorded_in_order(self):
        pipeline = default_pipeline(enable_compaction=True, enable_reordering=True)
        optimized = pipeline.run(build_program("hgt"))
        applied = optimized.metadata["applied_passes"]
        assert applied.index("linear_operator_reordering") < applied.index("compact_materialization")

    def test_configuration_labels(self):
        assert CompilerOptions().label() == "U"
        assert CompilerOptions(compact_materialization=True).label() == "C"
        assert CompilerOptions(linear_operator_reordering=True).label() == "R"
        assert CompilerOptions(compact_materialization=True, linear_operator_reordering=True).label() == "C+R"
