"""Tests of the frontend entry points, the graph context, and the executor."""

import numpy as np
import pytest

from repro.frontend import CompilerOptions, compile_model, compile_program, hector_compile
from repro.frontend.config import CONFIGURATIONS
from repro.models import build_program
from repro.runtime import GraphContext, PlanExecutor
from repro.ir.codegen import get_backend


class TestGraphContext:
    def test_context_arrays_consistent(self, small_graph):
        ctx = GraphContext.from_graph(small_graph)
        assert ctx.num_edges == small_graph.num_edges
        assert ctx.etype_ptr[-1] == ctx.num_edges
        assert ctx.unique_etype_ptr[-1] == ctx.num_unique
        assert len(ctx.edge_to_unique) == ctx.num_edges
        assert len(ctx.etype_to_src_ntype) == ctx.num_etypes
        # Every edge's source node type matches the canonical relation's source type.
        np.testing.assert_array_equal(
            ctx.node_type_ids[ctx.edge_src], ctx.etype_to_src_ntype[ctx.edge_type]
        )
        np.testing.assert_array_equal(
            ctx.node_type_ids[ctx.edge_dst], ctx.etype_to_dst_ntype[ctx.edge_type]
        )

    def test_degree_normalization_and_index_bytes(self, small_graph):
        ctx = GraphContext.from_graph(small_graph)
        norm = ctx.degree_normalization()
        assert norm.shape == (ctx.num_edges,)
        assert np.all((0 < norm) & (norm <= 1.0))
        assert ctx.index_array_bytes() > 0


class TestExecutor:
    def test_missing_inputs_detected(self, small_graph):
        result = compile_program(build_program("rgcn", in_dim=4, out_dim=4))
        executor = PlanExecutor(result.plan, result.generated)
        ctx = GraphContext.from_graph(small_graph)
        with pytest.raises(KeyError):
            executor.run_forward({}, ctx)

    def test_backward_requires_known_output(self, small_graph):
        result = compile_program(build_program("rgcn", in_dim=4, out_dim=4))
        executor = PlanExecutor(result.plan, result.generated)
        ctx = GraphContext.from_graph(small_graph)
        env = {
            "h": np.zeros((small_graph.num_nodes, 4)),
            "norm": np.ones(small_graph.num_edges),
            "W": np.zeros((small_graph.num_edge_types, 4, 4)),
            "W0": np.zeros((4, 4)),
        }
        executor.run_forward(env, ctx)
        with pytest.raises(KeyError):
            executor.run_backward(env, ctx, {"not_an_output": np.zeros(1)})


class TestFrontend:
    def test_compile_model_rejects_unknown_model(self, small_graph):
        with pytest.raises(KeyError):
            compile_model("gcn", small_graph)

    def test_options_with_override(self):
        options = CompilerOptions()
        modified = options.with_(compact_materialization=True)
        assert modified.compact_materialization and not options.compact_materialization
        assert set(CONFIGURATIONS) == {"U", "C", "R", "C+R"}

    def test_hector_compile_decorator_end_to_end(self, small_graph):
        dim = 4

        @hector_compile(in_dim=dim, out_dim=dim)
        def simple_layer(g):
            h = g.input_node_feature("h", dim)
            W = g.weight("W", (dim, dim))
            msg = g.typed_linear(h, W, "msg")
            g.mark_output(g.aggregate(msg, "out"))

        module = simple_layer(small_graph)
        features = np.random.default_rng(0).standard_normal((small_graph.num_nodes, dim))
        out = module.forward(features)["out"]
        assert out.shape == (small_graph.num_nodes, dim)
        # Manual check: sum of transformed source features per destination.
        W = module.parameters_by_name["W"].data
        expected = np.zeros_like(out)
        msg = np.einsum("ed,edf->ef", features[small_graph.edge_src],
                        W[small_graph.edge_type])
        np.add.at(expected, small_graph.edge_dst, msg)
        np.testing.assert_allclose(out, expected, atol=1e-8)

    def test_inference_only_compilation(self):
        result = compile_program(build_program("rgat"), CompilerOptions(emit_backward=False))
        assert result.plan.backward_kernels == []
        module = get_backend("python-interp").generate(result.plan)
        assert module.backward_functions == {}


class TestReferenceModels:
    def test_reference_load_parameters_validation(self, small_graph):
        from repro.models import REFERENCE_CLASSES
        reference = REFERENCE_CLASSES["rgcn"](small_graph, 4, 4)
        with pytest.raises(KeyError):
            reference.load_parameters({"bogus": np.zeros((1,))})
        with pytest.raises(ValueError):
            reference.load_parameters({"W0": np.zeros((3, 3))})

    def test_reference_output_shapes(self, small_graph, small_features):
        from repro.models import REFERENCE_CLASSES
        for model, key in (("rgcn", "h_out"), ("rgat", "out"), ("hgt", "h_out")):
            reference = REFERENCE_CLASSES[model](small_graph, 8, 8)
            out = reference.forward(small_features)
            assert out[key].shape == (small_graph.num_nodes, 8)

    def test_hgt_without_residual_when_dims_differ(self, small_graph, small_features):
        from repro.models import REFERENCE_CLASSES
        reference = REFERENCE_CLASSES["hgt"](small_graph, 8, 16)
        out = reference.forward(small_features)
        assert out["h_out"].shape == (small_graph.num_nodes, 16)
        program = build_program("hgt", in_dim=8, out_dim=16)
        program.validate()
