"""Tests of lowering to the intra-operator level and of kernel instances."""

import pytest

from repro.evaluation.workload import WorkloadSpec
from repro.frontend.config import CompilerOptions
from repro.frontend.compiler import compile_program
from repro.ir.inter_op import Space, lower_program
from repro.ir.inter_op.lowering import LoweringOptions
from repro.ir.inter_op.passes import default_pipeline
from repro.ir.intra_op import GemmKernel, GemmSchedule, TraversalKernel, TraversalSchedule
from repro.ir.intra_op.access import GatherKind, ScatterKind
from repro.ir.intra_op.kernels import FallbackKernel
from repro.models import build_program


def small_workload(**overrides):
    defaults = dict(
        name="w", num_nodes=1000, num_edges=5000, num_node_types=3,
        num_edge_types=10, num_unique_pairs=3000, in_dim=64, out_dim=64,
    )
    defaults.update(overrides)
    return WorkloadSpec(**defaults)


class TestLoweringDecisions:
    def test_rgcn_plan_structure(self):
        plan = lower_program(build_program("rgcn"))
        summary = plan.summary()
        assert summary["num_gemm_kernels"] == 2  # typed message GEMM + self-loop GEMM
        assert summary["num_traversal_kernels"] >= 2
        assert summary["num_fallback_kernels"] == 0
        assert plan.backward_kernels  # training kernels emitted by default

    def test_typed_linear_lowered_to_single_segmented_gemm(self):
        plan = lower_program(build_program("rgcn"))
        gemms = [k for k in plan.forward_kernels if isinstance(k, GemmKernel)]
        message_gemm = next(k for k in gemms if k.type_selector == "etype")
        assert message_gemm.x.access.gather is GatherKind.EDGE_SRC
        assert message_gemm.y.access.scatter is ScatterKind.ETYPE_SEGMENT
        assert message_gemm.launches(small_workload()) == 1

    def test_compaction_changes_gemm_iteration_space(self):
        program = default_pipeline(True, False).run(build_program("rgat"))
        plan = lower_program(program)
        gemms = [k for k in plan.forward_kernels if isinstance(k, GemmKernel)]
        compact_gemm = next(k for k in gemms if k.m_space is Space.COMPACT)
        assert compact_gemm.x.access.gather is GatherKind.UNIQUE_SRC
        assert compact_gemm.y.access.scatter is ScatterKind.UNIQUE_ETYPE_SEGMENT
        workload = small_workload()
        assert compact_gemm.rows(workload) == workload.num_unique_pairs

    def test_reordered_weight_products_fall_back(self):
        program = default_pipeline(False, True).run(build_program("rgat"))
        plan = lower_program(program)
        fallbacks = [k for k in plan.forward_kernels if isinstance(k, FallbackKernel)]
        assert len(fallbacks) == 2
        assert all(k.op_kind == "weight_product" for k in fallbacks)

    def test_fusion_groups_adjacent_traversal_ops(self):
        plan_fused = lower_program(build_program("rgat"), LoweringOptions(enable_fusion=True))
        plan_unfused = lower_program(build_program("rgat"), LoweringOptions(enable_fusion=False))
        fused_count = len([k for k in plan_fused.forward_kernels if isinstance(k, TraversalKernel)])
        unfused_count = len([k for k in plan_unfused.forward_kernels if isinstance(k, TraversalKernel)])
        assert fused_count < unfused_count
        assert plan_fused.fused_values  # some temporaries avoided global memory

    def test_fused_values_are_not_inputs_outputs_or_parameters(self):
        plan = lower_program(build_program("rgat"))
        special = set(plan.input_names) | set(plan.output_names) | set(plan.parameter_names)
        assert not (plan.fused_values & special)

    def test_backward_kernels_pair_with_forward(self):
        plan = lower_program(build_program("rgcn"))
        gemm_forward = [k for k in plan.forward_kernels if isinstance(k, GemmKernel)]
        gemm_backward = [k for k in plan.backward_kernels if isinstance(k, GemmKernel)]
        assert len(gemm_backward) == 2 * len(gemm_forward)  # dgrad + wgrad each
        assert any(k.has_outer_product for k in gemm_backward)
        assert all(k.direction == "backward" for k in plan.backward_kernels)

    def test_inference_only_lowering_has_no_backward(self):
        plan = lower_program(build_program("hgt"), LoweringOptions(emit_backward=False))
        assert plan.backward_kernels == []

    def test_plan_validate_catches_unknown_buffer(self):
        plan = lower_program(build_program("rgcn"))
        plan.forward_kernels[0].x.buffer = "nonexistent"
        with pytest.raises(ValueError):
            plan.validate()


class TestKernelCostAccounting:
    def test_gemm_flops_formula(self):
        plan = lower_program(build_program("rgcn", in_dim=32, out_dim=16))
        workload = small_workload(in_dim=32, out_dim=16)
        gemm = next(k for k in plan.forward_kernels
                    if isinstance(k, GemmKernel) and k.type_selector == "etype")
        assert gemm.flops(workload) == 2 * workload.num_edges * 32 * 16

    def test_compact_gemm_does_less_work(self):
        workload = small_workload()
        plan_u = lower_program(build_program("rgat"))
        plan_c = lower_program(default_pipeline(True, False).run(build_program("rgat")))
        flops_u = sum(k.flops(workload) for k in plan_u.forward_kernels if isinstance(k, GemmKernel))
        flops_c = sum(k.flops(workload) for k in plan_c.forward_kernels if isinstance(k, GemmKernel))
        assert flops_c < flops_u

    def test_traversal_kernel_atomics_and_bytes(self):
        plan = lower_program(build_program("rgat"))
        workload = small_workload()
        traversals = [k for k in plan.forward_kernels if isinstance(k, TraversalKernel)]
        aggregation = next(k for k in traversals if k.uses_atomics)
        assert aggregation.bytes_read(workload) > 0
        assert aggregation.bytes_written(workload) > 0
        backward = aggregation.emit_backward()[0]
        assert backward.uses_atomics
        assert backward.flops(workload) >= aggregation.flops(workload)

    def test_memory_model_counts_compaction_and_training(self):
        workload = small_workload()
        plan_u = lower_program(build_program("hgt"))
        plan_c = lower_program(default_pipeline(True, False).run(build_program("hgt")))
        assert plan_c.memory_bytes(workload) < plan_u.memory_bytes(workload)
        assert plan_u.memory_bytes(workload, training=True) > plan_u.memory_bytes(workload)

    def test_plan_launch_and_totals(self):
        plan = lower_program(build_program("hgt"))
        workload = small_workload()
        assert plan.num_kernel_launches(workload, "forward") == len(plan.forward_kernels)
        assert plan.total_flops(workload, "all") > plan.total_flops(workload, "forward")
        assert plan.total_bytes(workload, "forward") > 0

    def test_kernel_describe_and_dump(self):
        plan = lower_program(build_program("rgat"))
        dump = plan.dump()
        assert "gemm_1" in dump and "traversal" in dump
        for kernel in plan.forward_kernels:
            assert kernel.name in kernel.describe()


class TestSchedules:
    def test_gemm_schedule_validation(self):
        with pytest.raises(ValueError):
            GemmSchedule(tile_size=0)
        with pytest.raises(ValueError):
            GemmSchedule(coarsening=3)
        assert GemmSchedule(tile_size=16, coarsening=2).threads_per_block() == 128

    def test_traversal_schedule_validation(self):
        with pytest.raises(ValueError):
            TraversalSchedule(rows_per_block=0)
        schedule = TraversalSchedule(rows_per_block=64, threads_per_row=8)
        assert schedule.threads_per_block() == 512
        assert "partial_agg" in schedule.describe()

    def test_compiler_options_propagate_schedules(self):
        options = CompilerOptions(gemm_tile_size=32, gemm_coarsening=4, gemm_launch_bounds=128)
        result = compile_program(build_program("rgcn"), options)
        gemm = next(k for k in result.plan.forward_kernels if isinstance(k, GemmKernel))
        assert gemm.schedule.tile_size == 32
        assert gemm.schedule.coarsening == 4
        assert gemm.schedule.launch_bounds == 128
        assert "tile_sz: 32" in result.cuda_source()
