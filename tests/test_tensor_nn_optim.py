"""Tests of the module system, initialisers, and optimizers."""

import numpy as np
import pytest

from repro.tensor import Tensor, init, nn, optim


class TestModules:
    def test_linear_forward_shape_and_bias(self):
        layer = nn.Linear(4, 3, seed=0)
        out = layer(Tensor(np.random.randn(5, 4)))
        assert out.shape == (5, 3)
        assert layer.bias is not None
        layer_no_bias = nn.Linear(4, 3, bias=False)
        assert layer_no_bias.bias is None

    def test_named_parameters_recursive(self):
        class Wrapper(nn.Module):
            def __init__(self):
                super().__init__()
                self.inner = nn.Linear(2, 2)
                self.scale = nn.Parameter(np.ones(1))

            def forward(self, x):
                return self.inner(x) * self.scale

        wrapper = Wrapper()
        names = dict(wrapper.named_parameters())
        assert "scale" in names
        assert "inner.weight" in names
        assert "inner.bias" in names
        assert wrapper.num_parameters() == 2 * 2 + 2 + 1

    def test_module_list_and_dict(self):
        layers = nn.ModuleList([nn.Linear(2, 2), nn.Linear(2, 2)])
        assert len(layers) == 2
        assert len(list(layers[0].parameters())) == 2
        assert len([p for _, p in layers.named_parameters()]) == 4
        mapping = nn.ModuleDict({"a": nn.Linear(2, 2)})
        assert "a" in mapping
        assert len([p for _, p in mapping.named_parameters()]) == 2

    def test_train_eval_and_dropout(self):
        dropout = nn.Dropout(0.5, seed=0)
        x = Tensor(np.ones((100, 10)))
        train_out = dropout(x)
        assert not np.allclose(train_out.data, x.data)
        dropout.eval()
        np.testing.assert_allclose(dropout(x).data, x.data)

    def test_dropout_rejects_bad_probability(self):
        with pytest.raises(ValueError):
            nn.Dropout(1.5)

    def test_typed_linear_module_strategies_agree(self):
        rng = np.random.default_rng(0)
        layer = nn.TypedLinear(3, 4, 5, strategy="segment", seed=1)
        types = np.sort(rng.integers(0, 3, size=12))
        x = Tensor(rng.standard_normal((12, 4)))
        seg = layer(x, types)
        layer.strategy = "gather"
        gat = layer(x, types)
        np.testing.assert_allclose(seg.data, gat.data, atol=1e-12)

    def test_typed_linear_segment_requires_sorted_types(self):
        layer = nn.TypedLinear(2, 3, 3, strategy="segment")
        with pytest.raises(ValueError):
            layer(Tensor(np.random.randn(4, 3)), np.array([1, 0, 1, 0]))

    def test_zero_grad_clears_gradients(self):
        layer = nn.Linear(3, 2)
        out = layer(Tensor(np.random.randn(4, 3)))
        out.sum().backward()
        assert layer.weight.grad is not None
        layer.zero_grad()
        assert layer.weight.grad is None


class TestInit:
    def test_xavier_bounds(self):
        weight = init.xavier_uniform((64, 64), seed=0)
        bound = np.sqrt(6.0 / 128)
        assert np.abs(weight.data).max() <= bound
        assert weight.requires_grad

    def test_xavier_stacked_per_type_uses_last_two_dims(self):
        stacked = init.xavier_uniform((10, 16, 32), seed=0)
        bound = np.sqrt(6.0 / 48)
        assert np.abs(stacked.data).max() <= bound

    def test_kaiming_and_uniform_and_zeros(self):
        assert init.kaiming_uniform((8, 4), seed=1).shape == (8, 4)
        uniform = init.uniform((5,), low=-0.5, high=0.5, seed=2)
        assert np.abs(uniform.data).max() <= 0.5
        np.testing.assert_allclose(init.zeros((3, 3)).data, 0.0)


class TestOptimizers:
    def _quadratic_step(self, optimizer_cls, **kwargs):
        target = np.array([1.0, -2.0, 3.0])
        parameter = nn.Parameter(np.zeros(3))
        optimizer = optimizer_cls([parameter], **kwargs)
        losses = []
        for _ in range(200):
            optimizer.zero_grad()
            loss = ((parameter - Tensor(target)) ** 2).sum()
            loss.backward()
            optimizer.step()
            losses.append(loss.item())
        return parameter, losses

    def test_sgd_converges_on_quadratic(self):
        parameter, losses = self._quadratic_step(optim.SGD, lr=0.1)
        assert losses[-1] < 1e-6
        np.testing.assert_allclose(parameter.data, [1.0, -2.0, 3.0], atol=1e-3)

    def test_sgd_momentum_converges(self):
        _, losses = self._quadratic_step(optim.SGD, lr=0.05, momentum=0.9)
        assert losses[-1] < 1e-6

    def test_adam_converges(self):
        _, losses = self._quadratic_step(optim.Adam, lr=0.1)
        assert losses[-1] < 1e-4

    def test_optimizer_rejects_empty_parameters(self):
        with pytest.raises(ValueError):
            optim.SGD([])

    def test_step_skips_parameters_without_grad(self):
        parameter = nn.Parameter(np.ones(2))
        optimizer = optim.SGD([parameter], lr=0.5)
        optimizer.step()
        np.testing.assert_allclose(parameter.data, np.ones(2))
