"""Property-based determinism guarantees of the sharded-training substrate.

Three families of properties back the data-parallel design:

* **seed-stream separation** — the sampler seeds its RNG from the word tuple
  ``(base_seed, epoch[, shard])``; distinct ``(epoch, shard)`` pairs must
  never produce colliding RNG streams (distinct tuples → distinct first
  draws, and shard-less streams never alias sharded ones);
* **partitioning** — :func:`~repro.train.distributed.shard_minibatches` is a
  pure function whose output is always a disjoint, covering, deterministic,
  balanced-to-within-one partition of the global minibatch index range;
* **replayability** — ``resample(epoch, shard)`` is a pure reset: replaying
  any ``(epoch, shard)`` reproduces the identical block regardless of which
  other shards' epochs were sampled in between (the property that lets every
  worker re-derive any other worker's stream for debugging).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph import NeighborSampler, random_hetero_graph
from repro.train import shard_minibatches

epochs = st.integers(min_value=0, max_value=50)
shards = st.integers(min_value=0, max_value=7)


@pytest.fixture(scope="module")
def graph():
    return random_hetero_graph(
        num_nodes=40, num_edges=200, num_node_types=2, num_edge_types=4, seed=9
    )


def stream_fingerprint(base_seed, epoch, shard):
    """The first RNG draws of the sampler's ``(seed, epoch, shard)`` stream."""
    words = [base_seed, epoch] if shard is None else [base_seed, epoch, shard]
    return tuple(np.random.default_rng(words).integers(0, 2**63, size=4))


class TestSeedStreamSeparation:
    @settings(max_examples=60, deadline=None)
    @given(e1=epochs, s1=shards, e2=epochs, s2=shards)
    def test_distinct_epoch_shard_pairs_never_collide(self, e1, s1, e2, s2):
        if (e1, s1) == (e2, s2):
            return
        assert stream_fingerprint(0, e1, s1) != stream_fingerprint(0, e2, s2)

    @settings(max_examples=40, deadline=None)
    @given(epoch=epochs, shard=shards.filter(lambda s: s >= 1))
    def test_sharded_streams_never_alias_unsharded_ones(self, epoch, shard):
        """A worker's stream (shard >= 1) must differ from every 1-worker
        epoch stream — otherwise shard k would silently replay some
        single-worker epoch."""
        for other_epoch in range(8):
            assert stream_fingerprint(0, epoch, shard) != stream_fingerprint(0, other_epoch, None)

    def test_shard_zero_is_the_unsharded_stream(self):
        """Pinned identity: numpy's SeedSequence absorbs a trailing zero
        word, so ``(epoch, shard=0)`` seeds the very stream unsharded
        training uses — a 1-shard world reproduces the plain trainer's
        sampling exactly, by construction."""
        for epoch in range(5):
            assert stream_fingerprint(0, epoch, 0) == stream_fingerprint(0, epoch, None)

    @settings(max_examples=40, deadline=None)
    @given(epoch=epochs, shard=shards)
    def test_sampler_draws_differ_across_shards(self, epoch, shard):
        graph = random_hetero_graph(
            num_nodes=40, num_edges=200, num_node_types=2, num_edge_types=4, seed=9
        )
        a = NeighborSampler(graph, fanouts=(2,), seed=0)
        a.resample(epoch, shard=shard)
        b = NeighborSampler(graph, fanouts=(2,), seed=0)
        b.resample(epoch, shard=shard + 1)
        # Same fanout policy, same seeds, adjacent shards: the sampled edge
        # sets are allowed to coincide by chance on tiny graphs, but the RNG
        # states must differ — detectable through the next raw draws.
        assert tuple(a._rng.integers(0, 2**63, 4)) != tuple(b._rng.integers(0, 2**63, 4))


class TestShardPartition:
    @settings(max_examples=100, deadline=None)
    @given(
        num_minibatches=st.integers(min_value=0, max_value=200),
        num_shards=st.integers(min_value=1, max_value=16),
    )
    def test_partition_is_disjoint_covering_and_balanced(self, num_minibatches, num_shards):
        parts = shard_minibatches(num_minibatches, num_shards)
        assert len(parts) == num_shards
        merged = np.concatenate(parts) if parts else np.array([])
        assert len(merged) == num_minibatches  # covering without duplicates
        assert np.array_equal(np.sort(merged), np.arange(num_minibatches))
        sizes = [len(part) for part in parts]
        assert max(sizes) - min(sizes) <= 1  # balanced to within one
        for shard, part in enumerate(parts):
            assert all(index % num_shards == shard for index in part)  # round-robin

    @settings(max_examples=50, deadline=None)
    @given(
        num_minibatches=st.integers(min_value=0, max_value=200),
        num_shards=st.integers(min_value=1, max_value=16),
    )
    def test_partition_is_deterministic(self, num_minibatches, num_shards):
        first = shard_minibatches(num_minibatches, num_shards)
        second = shard_minibatches(num_minibatches, num_shards)
        for a, b in zip(first, second):
            assert np.array_equal(a, b)


class TestResampleReplay:
    @settings(max_examples=25, deadline=None)
    @given(
        epoch=st.integers(min_value=0, max_value=10),
        shard=st.integers(min_value=0, max_value=3),
        interleaved=st.lists(
            st.tuples(st.integers(min_value=0, max_value=10), st.integers(min_value=0, max_value=3)),
            max_size=4,
        ),
    )
    def test_resample_replays_identically_after_other_shards(self, graph, epoch, shard, interleaved):
        """Sampling other (epoch, shard) streams between two visits of the
        same (epoch, shard) must not perturb the replay."""
        seeds = np.arange(12)
        sampler = NeighborSampler(graph, fanouts=(2, 2), seed=5)
        sampler.resample(epoch, shard=shard)
        original = sampler.sample(seeds)
        for other_epoch, other_shard in interleaved:
            sampler.resample(other_epoch, shard=other_shard)
            sampler.sample(seeds)
        sampler.resample(epoch, shard=shard)
        replayed = sampler.sample(seeds)
        assert np.array_equal(original.node_map, replayed.node_map)
        assert original.num_edges == replayed.num_edges
        assert np.array_equal(
            original.graph.relation_edge_counts(), replayed.graph.relation_edge_counts()
        )
        assert np.array_equal(original.graph.coo.src, replayed.graph.coo.src)
        assert np.array_equal(original.graph.coo.dst, replayed.graph.coo.dst)

    def test_constructor_shard_is_sticky_across_resamples(self, graph):
        """A sampler built with shard=k keeps drawing shard-k streams when
        resample is called without an explicit shard."""
        sharded = NeighborSampler(graph, fanouts=(2,), seed=5, shard=2)
        sharded.resample(4)
        explicit = NeighborSampler(graph, fanouts=(2,), seed=5)
        explicit.resample(4, shard=2)
        seeds = np.arange(12)
        a, b = sharded.sample(seeds), explicit.sample(seeds)
        assert np.array_equal(a.node_map, b.node_map)
        assert a.num_edges == b.num_edges
