"""Tests of the baseline system models, the memory/OOM model, and Table 1 data."""

import pytest

from repro.baselines import (
    ALL_BASELINES,
    HectorSystem,
    TABLE1_FEATURES,
    UnsupportedModelError,
    feature_table_rows,
    get_baseline,
)
from repro.baselines.base import backward_works
from repro.evaluation.workload import WorkloadSpec
from repro.frontend.config import CONFIGURATIONS
from repro.runtime.memory import MemoryModel, OutOfMemoryError, check_footprint


def workload(name="aifb", **kwargs):
    return WorkloadSpec.from_dataset(name, **kwargs)


class TestMemoryModel:
    def test_allocate_and_oom(self):
        model = MemoryModel(capacity_bytes=1000)
        model.allocate("a", 600)
        assert model.would_fit(300)
        assert not model.would_fit(600)
        with pytest.raises(OutOfMemoryError):
            model.allocate("b", 600)
        assert model.peak_allocated() >= 1200
        model.reset()
        assert model.total_allocated() == 0

    def test_free_and_negative_rejected(self):
        model = MemoryModel(capacity_bytes=1000)
        model.allocate("a", 500)
        model.free("a")
        assert model.total_allocated() == 0
        with pytest.raises(ValueError):
            model.allocate("b", -1)

    def test_check_footprint(self):
        assert check_footprint(10, 100) == 10
        with pytest.raises(OutOfMemoryError) as excinfo:
            check_footprint(200 * 2**30, 24 * 2**30, label="PyG/rgcn/mag")
        assert "PyG" in str(excinfo.value)


class TestBaselineSupportMatrix:
    def test_registry_contains_five_systems(self):
        assert set(ALL_BASELINES) == {"DGL", "PyG", "Seastar", "Graphiler", "HGL"}
        assert get_baseline("DGL").name == "DGL"
        with pytest.raises(KeyError):
            get_baseline("TVM")

    def test_graphiler_is_inference_only(self):
        graphiler = get_baseline("Graphiler")
        assert graphiler.supports("rgcn", training=False)
        assert not graphiler.supports("rgcn", training=True)

    def test_hgl_is_training_only_without_hgt(self):
        hgl = get_baseline("HGL")
        assert hgl.supports("rgat", training=True)
        assert not hgl.supports("rgat", training=False)
        assert not hgl.supports("hgt", training=True)
        estimate = hgl.estimate("hgt", workload(), training=True)
        assert estimate.unsupported and estimate.time_ms is None
        assert estimate.status() == "n/a"

    def test_unknown_model_raises(self):
        with pytest.raises(UnsupportedModelError):
            get_baseline("DGL").forward_works("gat", workload())


class TestBaselineKernelPlans:
    def test_per_relation_loop_launches_scale_with_relations(self):
        dgl = get_baseline("DGL")
        few = dgl.works("rgat", workload("mag"), training=False)      # 4 relations
        many = dgl.works("rgat", workload("fb15k"), training=False)   # 474 relations
        assert sum(w.launches for w in many) > sum(w.launches for w in few)

    def test_segment_mm_uses_single_launch_per_layer(self):
        dgl = get_baseline("DGL")
        works = dgl.works("rgcn", workload("fb15k"), training=False)
        message_gemms = [w for w in works if w.name.startswith("rgcn_msg") and w.category == "gemm"]
        assert len(message_gemms) == 1

    def test_pyg_weight_replication_appears_in_plan_and_memory(self):
        pyg = get_baseline("PyG")
        works = pyg.works("rgcn", workload("aifb"), training=False)
        assert any(w.name.endswith("replicate_w") for w in works)
        dgl_memory = get_baseline("DGL").memory_bytes("rgcn", workload("aifb"), training=False)
        pyg_memory = pyg.memory_bytes("rgcn", workload("aifb"), training=False)
        assert pyg_memory > 5 * dgl_memory

    def test_seastar_lowers_everything_to_traversal(self):
        seastar = get_baseline("Seastar")
        works = seastar.works("rgcn", workload(), training=False)
        assert all(w.category != "gemm" for w in works)

    def test_backward_works_add_outer_products_and_atomics(self):
        forward = get_baseline("DGL").forward_works("rgcn", workload())
        backward = backward_works(forward)
        assert len(backward) > len(forward)
        assert any(w.has_outer_product for w in backward)
        assert all(w.direction == "backward" for w in backward)

    def test_training_estimate_slower_than_inference(self):
        dgl = get_baseline("DGL")
        inference = dgl.estimate("rgcn", workload("bgs"), training=False)
        training = dgl.estimate("rgcn", workload("bgs"), training=True)
        assert training.time_ms > inference.time_ms


class TestOOMBehaviour:
    def test_weight_replicating_systems_oom_on_large_graphs(self):
        big = workload("mag")
        assert get_baseline("PyG").estimate("rgcn", big, training=True).oom
        assert get_baseline("Seastar").estimate("rgat", big, training=True).oom

    def test_hector_runs_where_baselines_oom(self):
        big = workload("mag")
        hector = HectorSystem(CONFIGURATIONS["C+R"])
        estimate = hector.estimate("rgcn", big, training=True)
        assert not estimate.oom and estimate.time_ms is not None

    def test_compaction_reduces_hector_memory(self):
        big = workload("wikikg2")
        unopt = HectorSystem(CONFIGURATIONS["U"]).memory_bytes("rgat", big, training=False)
        compact = HectorSystem(CONFIGURATIONS["C"]).memory_bytes("rgat", big, training=False)
        assert compact < unopt


class TestHectorSystemInterface:
    def test_hector_supports_all_models_and_modes(self):
        hector = HectorSystem()
        for model in ("rgcn", "rgat", "hgt"):
            assert hector.supports(model, training=True)
            assert hector.supports(model, training=False)

    def test_compilation_is_cached_per_dimensions(self):
        hector = HectorSystem()
        first = hector.compiled("rgcn", 64, 64)
        second = hector.compiled("rgcn", 64, 64)
        assert first is second
        assert hector.compiled("rgcn", 32, 32) is not first

    def test_hector_faster_than_eager_baselines_on_small_graph(self):
        small = workload("aifb")
        hector_time = HectorSystem(CONFIGURATIONS["U"]).estimate("rgat", small, False).time_ms
        dgl_time = get_baseline("DGL").estimate("rgat", small, False).time_ms
        assert hector_time < dgl_time


class TestTable1:
    def test_feature_rows_cover_all_systems(self):
        rows = feature_table_rows()
        assert len(rows) == 6
        for row in rows:
            assert set(row) == {"feature", "Graphiler", "Seastar", "HGL", "Hector"}

    def test_hector_claims_match_paper(self):
        hector = TABLE1_FEATURES["Hector"]
        assert hector["target_training"] is True
        assert hector["design_space_data_layout"] is True
        assert hector["design_space_intra_operator_schedule"] is True
        assert TABLE1_FEATURES["Graphiler"]["target_training"] is False
        assert TABLE1_FEATURES["HGL"]["target_inference"] is False
