"""Golden snapshots of the CUDA backend's emitted kernel text.

Two RGAT programs are locked down: the default configuration and the one the
autotuner deterministically picks for the bgs workload.  Any change to the
pass pipeline, the lowering, the schedules, the CUDA emitter, or the tuner's
ranking shows up as a diff against ``tests/golden/*.cu`` — refresh
intentionally with ``pytest tests/test_codegen_golden.py --update-golden``.
"""

from pathlib import Path

import pytest

from repro.evaluation.workload import WorkloadSpec
from repro.frontend.compiler import compile_program
from repro.frontend.config import CompilerOptions
from repro.models import build_program
from repro.tuner import search_design_space

GOLDEN_DIR = Path(__file__).parent / "golden"

#: The workload the "tuned" snapshot is tuned for (mid-sized, Table 3).
TUNED_DATASET = "bgs"


def _check_golden(name: str, text: str, update: bool) -> None:
    path = GOLDEN_DIR / name
    if update:
        GOLDEN_DIR.mkdir(exist_ok=True)
        path.write_text(text)
        return
    assert path.exists(), f"missing golden snapshot {path}; run pytest --update-golden"
    golden = path.read_text()
    assert text == golden, (
        f"generated CUDA text diverged from {path}; inspect the diff and, if the change is "
        "intentional, refresh with pytest tests/test_codegen_golden.py --update-golden"
    )


@pytest.fixture(scope="module")
def rgat_program():
    return build_program("rgat", in_dim=64, out_dim=64)


def test_default_rgat_cuda_snapshot(rgat_program, update_golden):
    result = compile_program(rgat_program, CompilerOptions())
    text = f"// configuration: {result.options.schedule_label()}\n" + result.cuda_source()
    _check_golden("rgat_default.cu", text, update_golden)


def test_tuned_rgat_cuda_snapshot(rgat_program, update_golden):
    workload = WorkloadSpec.from_dataset(TUNED_DATASET)
    tuned = search_design_space(rgat_program, workload, mode="inference")
    result = compile_program(rgat_program, tuned.best.options)
    text = (
        f"// tuned for {TUNED_DATASET} (inference): {tuned.best.label}\n" + result.cuda_source()
    )
    _check_golden("rgat_tuned_bgs.cu", text, update_golden)


def test_default_rgat_codegen_python_snapshot(rgat_program, update_golden):
    """Golden whole-plan Python source of the ``python-codegen`` backend.

    Compiled without a graph, so the snapshot is the schema-independent
    (runtime-looped) form: any change to the kernel templates, the inlining
    rewrites, the fresh-scatter specialisation, or the merged segment loops
    shows up as a diff against ``tests/golden/rgat_default_codegen.py``.
    """
    result = compile_program(rgat_program, CompilerOptions(backend="python-codegen"))
    text = f"# backend: {result.plan.metadata['backend']}\n" + result.generated.source
    _check_golden("rgat_default_codegen.py", text, update_golden)


def test_occupancy_specialised_mixed_snapshot(rgat_program, update_golden):
    """Golden mixed-backend source specialised to a sparse occupancy.

    A deterministic six-relation schema with two empty relations, compiled
    with ``backend="mixed"`` and respecialised at bind time: the snapshot
    locks the per-kernel interp/codegen split, the segment dispatchers, and
    the occupancy-masked unrolls (empty relations emit no block at all).
    """
    import numpy as np

    from repro.graph.hetero_graph import HeteroGraph

    rng = np.random.default_rng(5)
    edges = {}
    for r in range(6):
        key = (f"nt{r % 2}", f"rel{r}", f"nt{(r + 1) % 2}")
        if r in (1, 4):
            edges[key] = (np.zeros(0, dtype=np.int64), np.zeros(0, dtype=np.int64))
        else:
            edges[key] = (rng.integers(0, 20, 30), rng.integers(0, 20, 30))
    graph = HeteroGraph({"nt0": 20, "nt1": 20}, edges)

    result = compile_program(
        rgat_program,
        CompilerOptions(backend="mixed", emit_backward=True),
        graph=graph,
    )
    from repro.runtime.context import GraphContext

    ctx = GraphContext.from_graph(graph)
    variant = result.generated.specialise_for_occupancy(ctx)
    assert variant is not result.generated, "sparse occupancy must specialise"
    text = f"# backend: {result.plan.metadata['backend']} (occupancy-specialised)\n" + variant.source
    _check_golden("rgat_mixed_occupancy_codegen.py", text, update_golden)


def test_tuned_snapshot_differs_from_default(rgat_program):
    """The tuner must pick a non-default point for bgs (passes and schedules)."""
    workload = WorkloadSpec.from_dataset(TUNED_DATASET)
    tuned = search_design_space(rgat_program, workload, mode="inference")
    default = compile_program(rgat_program, CompilerOptions())
    chosen = compile_program(rgat_program, tuned.best.options)
    assert chosen.cuda_source() != default.cuda_source()
