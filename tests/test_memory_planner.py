"""Tests of the buffer-lifetime memory planner and the runtime arena."""

import numpy as np

from repro.evaluation.workload import WorkloadSpec
from repro.frontend import CompilerOptions, compile_program
from repro.models import build_program
from repro.runtime import CompiledRGNNModule, MemoryPlanner


def _inference_plan(model="hgt", dim=16):
    options = CompilerOptions(emit_backward=False, enable_compilation_cache=False)
    return compile_program(build_program(model, in_dim=dim, out_dim=dim), options)


def _training_plan(model="hgt", dim=16):
    options = CompilerOptions(enable_compilation_cache=False)
    return compile_program(build_program(model, in_dim=dim, out_dim=dim), options)


def _workload(dim=16):
    return WorkloadSpec(
        name="unit", num_nodes=50, num_edges=200, num_node_types=3,
        num_edge_types=6, num_unique_pairs=120, in_dim=dim, out_dim=dim,
    )


class TestLifetimes:
    def test_lifetimes_cover_only_intermediates(self):
        result = _inference_plan()
        planner = MemoryPlanner(result.plan)
        intervals = planner.lifetimes()
        names = {interval.name for interval in intervals}
        owned = set(result.plan.input_names) | set(result.plan.parameter_names) | set(result.plan.output_names)
        assert names, "expected at least one intermediate buffer"
        assert not names & owned

    def test_lifetimes_well_formed_and_ordered(self):
        planner = MemoryPlanner(_inference_plan().plan)
        intervals = planner.lifetimes()
        assert all(interval.start <= interval.end for interval in intervals)
        starts = [interval.start for interval in intervals]
        assert starts == sorted(starts)

    def test_training_pins_intermediates_through_backward(self):
        plan = _training_plan().plan
        planner = MemoryPlanner(plan)
        horizon = len(plan.forward_kernels) + len(plan.backward_kernels) - 1
        assert all(interval.end == horizon for interval in planner.lifetimes())

    def test_overlap_predicate(self):
        from repro.runtime import BufferLifetime
        a = BufferLifetime("a", 0, 3)
        b = BufferLifetime("b", 3, 5)
        c = BufferLifetime("c", 4, 6)
        assert a.overlaps(b) and not a.overlaps(c) and b.overlaps(c)


class TestSlotPacking:
    def test_shared_slots_never_overlap_in_time(self):
        planner = MemoryPlanner(_inference_plan().plan)
        memory_plan = planner.plan_memory(_workload())
        by_name = {interval.name: interval for interval in memory_plan.lifetimes}
        for name_a, slot_a in memory_plan.slot_of.items():
            for name_b, slot_b in memory_plan.slot_of.items():
                if name_a < name_b and slot_a == slot_b:
                    assert not by_name[name_a].overlaps(by_name[name_b]), (
                        f"{name_a} and {name_b} share slot {slot_a} but their lifetimes overlap"
                    )

    def test_inference_plan_shares_slots(self):
        memory_plan = MemoryPlanner(_inference_plan().plan).plan_memory(_workload())
        assert memory_plan.num_slots < memory_plan.num_buffers
        assert memory_plan.sharing_fraction() < 1.0

    def test_training_plan_has_no_sharing(self):
        memory_plan = MemoryPlanner(_training_plan().plan).plan_memory(_workload())
        assert memory_plan.num_slots == memory_plan.num_buffers
        assert memory_plan.arena_elements() == memory_plan.naive_elements()

    def test_slot_capacity_covers_every_occupant(self):
        memory_plan = MemoryPlanner(_inference_plan().plan).plan_memory(_workload())
        for name, slot in memory_plan.slot_of.items():
            assert memory_plan.slot_elements[slot] >= memory_plan.element_counts[name]

    def test_naive_peak_between_zero_and_whole_pass(self):
        result = _inference_plan()
        planner = MemoryPlanner(result.plan)
        workload = _workload()
        peak = planner.naive_peak_bytes(workload, training=False)
        # Freeing after last read can only shrink the whole-pass footprint.
        assert 0 < peak <= result.plan.memory_bytes(workload, training=False)
        # Under training nothing can be freed early: the peak equals holding
        # every materialised intermediate simultaneously.
        training_plan = _training_plan().plan
        training_planner = MemoryPlanner(training_plan)
        held = sum(training_plan.buffers[i.name].num_bytes(workload)
                   for i in training_planner.lifetimes(training=True))
        persistent = training_planner.naive_peak_bytes(workload, training=True) - held
        assert persistent >= 0

    def test_runtime_arena_covers_only_inplace_buffers(self, small_graph):
        from repro.runtime import CompiledRGNNModule
        result = _inference_plan("hgt", dim=8)
        module = CompiledRGNNModule(result.plan, result.generated, small_graph)
        planner = MemoryPlanner(result.plan)
        assert set(module.arena.managed_names) == planner.inplace_written_names()
        assert planner.inplace_written_names() <= set(planner.intermediate_names())

    def test_planned_footprint_no_worse_than_naive(self):
        result = _inference_plan()
        planner = MemoryPlanner(result.plan)
        workload = _workload()
        planned = planner.planned_footprint_bytes(workload, training=False)
        naive = result.plan.memory_bytes(workload, training=False)
        assert planned <= naive
        assert planned > 0


class TestBufferArena:
    def test_arena_reuse_matches_fresh_allocation_reference(self, small_graph):
        """Outputs under arena reuse are bit-identical to fresh allocation."""
        features = np.random.default_rng(5).standard_normal((small_graph.num_nodes, 8))
        fresh_opts = CompilerOptions(enable_memory_planning=False, enable_compilation_cache=False)
        arena_opts = CompilerOptions(enable_memory_planning=True, enable_compilation_cache=False)
        for model in ("rgcn", "rgat", "hgt"):
            program = build_program(model, in_dim=8, out_dim=8)
            fresh = compile_program(program, fresh_opts)
            planned = compile_program(program, arena_opts)
            reference = CompiledRGNNModule(fresh.plan, fresh.generated, small_graph, seed=2)
            module = CompiledRGNNModule(planned.plan, planned.generated, small_graph, seed=2)
            assert module.arena is not None and reference.arena is None
            expected = reference.forward(features)
            # Run several times: reuse must not leak state between invocations.
            for _ in range(3):
                outputs = module.forward(features)
                for name in expected:
                    np.testing.assert_allclose(outputs[name], expected[name], atol=1e-12)
            ref_grads = reference.backward({k: np.ones_like(v) for k, v in expected.items()})
            grads = module.backward({k: np.ones_like(v) for k, v in outputs.items()})
            for name in ref_grads:
                np.testing.assert_allclose(grads[name], ref_grads[name], atol=1e-12)

    def test_bind_does_not_overwrite_caller_entries(self, small_graph):
        result = _inference_plan("rgcn", dim=8)
        module = CompiledRGNNModule(result.plan, result.generated, small_graph)
        arena = module.arena
        assert arena is not None
        name = arena.managed_names[0]
        sentinel = np.full(3, 7.0)
        env = {name: sentinel}
        arena.bind(env)
        assert env[name] is sentinel

    def test_arena_accounting(self, small_graph):
        result = _inference_plan("hgt", dim=8)
        module = CompiledRGNNModule(result.plan, result.generated, small_graph)
        arena = module.arena
        assert arena.arena_bytes() > 0
        assert arena.arena_bytes() <= arena.naive_bytes_per_invocation() or not arena.memory_plan.slot_of
        assert arena.bytes_saved() == 0  # nothing bound yet
        features = np.random.default_rng(0).standard_normal((small_graph.num_nodes, 8))
        module.forward(features)
        module.forward(features)
        assert arena.bytes_saved() > 0

    def test_memory_study_reports_planner_columns(self):
        from repro.evaluation.memory_study import memory_footprint_study
        rows = memory_footprint_study(datasets=["aifb"])
        row = rows[0]
        assert 0.0 < row["inference_planned_fraction"] <= 1.0
        assert 0.0 < row["arena_sharing_fraction"] <= 1.0
