"""Zero-record discipline of the stats layers, pinned division by division.

Every aggregate in :mod:`repro.train.stats`, :mod:`repro.serving.stats`, and
:class:`repro.train.collective.CollectiveStats` must be defined for *every*
history length — zero epochs, zero shards, zero batches, zero seconds, zero
collective operations — summarising to zeros (or ``None`` where "no data" is
meaningful), never raising ``ZeroDivisionError``.

Also locked here: the generator-consumption regression in
``TrainStats.summary(arena_pools=...)`` — passing a *generator* of pools used
to be silently wrong (the hits sum consumed it, the misses sum saw nothing,
and the hit rate came out 1.0 regardless of the real misses).
"""

from repro.serving.stats import BatchRecord, EngineStats, aggregate_summary, percentile
from repro.train.collective import CollectiveStats
from repro.train.stats import DistributedTrainStats, EpochStats, ShardEpochStats, TrainStats


class _Pool:
    def __init__(self, hits, misses):
        self.hits = hits
        self.misses = misses


class TestTrainStatsZeroRecords:
    def test_empty_run_summary_is_all_zeros(self):
        stats = TrainStats()
        summary = stats.summary()
        assert summary["epochs"] == 0
        assert summary["final_loss"] is None
        assert summary["seeds_per_s"] == 0.0
        assert summary["minibatches"] == 0
        assert stats.final_loss is None
        assert stats.loss_curve() == []

    def test_zero_second_epoch_reports_zero_throughput(self):
        epoch = EpochStats(epoch=0, loss=1.0, num_seeds=10, num_minibatches=1,
                           num_steps=1, seconds=0.0)
        assert epoch.seeds_per_second == 0.0
        stats = TrainStats()
        stats.record(epoch)
        assert stats.summary()["seeds_per_s"] == 0.0

    def test_empty_arena_pools_is_not_reported(self):
        assert "arena_hit_rate" not in TrainStats().summary(arena_pools=[])

    def test_zero_lookup_pools_report_zero_not_raise(self):
        summary = TrainStats().summary(arena_pools=[_Pool(0, 0)])
        assert summary["arena_hit_rate"] == 0.0

    def test_generator_arena_pools_regression(self):
        """A generator of pools must be counted once, not consumed twice:
        pre-fix this reported hit rate 1.0 (misses silently zero)."""
        pools = (pool for pool in [_Pool(1, 0), _Pool(0, 1)])
        summary = TrainStats().summary(arena_pools=pools)
        assert summary["arena_hit_rate"] == 0.5


class TestShardStatsZeroRecords:
    def test_zero_busy_shard_reports_zero_throughput(self):
        record = ShardEpochStats(shard=0, epoch=0, num_minibatches=0,
                                 num_seeds=0, busy_seconds=0.0)
        assert record.seeds_per_second == 0.0

    def test_empty_distributed_run_summary(self):
        stats = DistributedTrainStats(num_shards=4)
        assert stats.max_shard_busy_seconds == 0.0
        rows = stats.per_shard_summary()
        assert len(rows) == 4
        for row in rows:
            assert row["seeds_per_s"] == 0.0 and row["busy_s"] == 0.0
        summary = stats.summary()
        assert summary["shards"] == 4
        assert summary["aggregate_seeds_per_s"] == 0.0
        assert summary["max_shard_busy_s"] == 0.0

    def test_zero_shard_world_max_busy_is_zero(self):
        assert DistributedTrainStats(num_shards=0).max_shard_busy_seconds == 0.0

    def test_summary_with_idle_collective(self):
        stats = DistributedTrainStats(num_shards=2)
        summary = stats.summary(collective=_IdleCollective())
        assert summary["all_reduce_ops"] == 0
        assert summary["mean_kb_per_op"] == 0.0
        assert summary["aggregate_seeds_per_s"] == 0.0


class _IdleCollective:
    stats = CollectiveStats()


class TestCollectiveStatsZeroRecords:
    def test_fresh_stats_all_rates_are_zero(self):
        stats = CollectiveStats()
        assert stats.mean_bytes_per_operation == 0.0
        assert stats.megabytes_moved == 0.0
        summary = stats.summary()
        assert summary == {
            "all_reduce_ops": 0,
            "all_reduce_mb": 0.0,
            "all_reduce_s": 0.0,
            "mean_kb_per_op": 0.0,
        }


class TestServingStatsZeroRecords:
    def test_empty_engine_summary_is_all_zeros(self):
        stats = EngineStats()
        assert stats.mean_occupancy == 0.0
        assert stats.requests_per_second == 0.0
        assert stats.seeds_per_second == 0.0
        assert stats.plan_replay_rate is None
        summary = stats.summary()
        assert summary["throughput_rps"] == 0.0
        assert summary["latency_p50_ms"] == 0.0
        assert summary["plan_replay_rate"] is None

    def test_zero_second_batches_report_zero_throughput(self):
        stats = EngineStats()
        stats.record_batch(BatchRecord(num_requests=2, num_seeds=2, block_nodes=1,
                                       block_edges=1, sample_seconds=0.0,
                                       execute_seconds=0.0))
        assert stats.requests_per_second == 0.0
        assert stats.seeds_per_second == 0.0

    def test_percentile_of_empty_and_singleton(self):
        assert percentile([], 50) == 0.0
        assert percentile([3.0], 95) == 3.0
        assert percentile([1.0, 2.0], 200) == 2.0  # q clamped into [0, 100]
        assert percentile([1.0, 2.0], -5) == 1.0

    def test_aggregate_of_no_endpoints(self):
        summary = aggregate_summary([])
        assert summary["endpoints"] == 0
        assert summary["mean_occupancy"] == 0.0
        assert summary["throughput_rps"] == 0.0
        assert summary["seeds_per_s"] == 0.0
        assert summary["latency_p50_ms"] == 0.0
        assert summary["plan_replay_rate"] is None

    def test_aggregate_of_empty_endpoints(self):
        summary = aggregate_summary([EngineStats(), EngineStats()])
        assert summary["endpoints"] == 2
        assert summary["throughput_rps"] == 0.0
        assert summary["plan_replay_rate"] is None

    def test_aggregate_plan_replay_rate_pools_tracked_batches_only(self):
        tracked = EngineStats()
        tracked.record_batch(BatchRecord(1, 1, 1, 1, 0.1, 0.1, plan_replayed=True))
        tracked.record_batch(BatchRecord(1, 1, 1, 1, 0.1, 0.1, plan_replayed=False))
        untracked = EngineStats()
        untracked.record_batch(BatchRecord(1, 1, 1, 1, 0.1, 0.1))
        summary = aggregate_summary([tracked, untracked])
        assert summary["plan_replay_rate"] == 0.5
