"""Tests of the compilation cache, the fusion passes, and executor seeding."""

import numpy as np
import pytest

from repro.frontend import (
    CompilationCache,
    CompilerOptions,
    clear_compilation_cache,
    compile_program,
    global_compilation_cache,
)
from repro.frontend.cache import fingerprint_graph_schema, fingerprint_program, make_cache_key
from repro.ir.inter_op.passes import ElementwiseFusionPass
from repro.ir.inter_op.lowering import LoweringOptions, fuse_adjacent_traversal_kernels, lower_program
from repro.ir.intra_op.kernels import TraversalKernel
from repro.ir.intra_op.schedule import TraversalSchedule, merge_traversal_schedules, traversal_schedules_compatible
from repro.models import build_program
from repro.runtime import GraphContext, PlanExecutor


class TestProgramFingerprint:
    def test_independent_builds_fingerprint_identically(self):
        a = build_program("rgat", in_dim=16, out_dim=16)
        b = build_program("rgat", in_dim=16, out_dim=16)
        assert a is not b
        assert fingerprint_program(a) == fingerprint_program(b)

    def test_fingerprint_distinguishes_models_and_dims(self):
        base = fingerprint_program(build_program("rgat", in_dim=16, out_dim=16))
        assert fingerprint_program(build_program("hgt", in_dim=16, out_dim=16)) != base
        assert fingerprint_program(build_program("rgat", in_dim=32, out_dim=16)) != base

    def test_graph_schema_fingerprint(self, small_graph, tiny_graph):
        assert fingerprint_graph_schema(small_graph) == fingerprint_graph_schema(small_graph)
        assert fingerprint_graph_schema(small_graph) != fingerprint_graph_schema(tiny_graph)


class TestCompilationCache:
    def test_cache_hit_returns_same_result(self):
        cache = CompilationCache()
        options = CompilerOptions()
        first = compile_program(build_program("rgcn", in_dim=8, out_dim=8), options, cache=cache)
        second = compile_program(build_program("rgcn", in_dim=8, out_dim=8), options, cache=cache)
        assert first is second
        assert cache.stats.hits == 1 and cache.stats.misses == 1
        assert len(cache) == 1

    def test_option_changes_miss(self):
        cache = CompilationCache()
        program = build_program("rgcn", in_dim=8, out_dim=8)
        compile_program(program, CompilerOptions(), cache=cache)
        compile_program(program, CompilerOptions(compact_materialization=True), cache=cache)
        assert len(cache) == 2
        assert cache.stats.hits == 0

    def test_disabled_cache_rebuilds(self):
        options = CompilerOptions(enable_compilation_cache=False)
        program = build_program("rgcn", in_dim=8, out_dim=8)
        first = compile_program(program, options)
        second = compile_program(program, options)
        assert first is not second

    def test_global_cache_clear(self):
        clear_compilation_cache()
        compile_program(build_program("rgcn", in_dim=8, out_dim=8), CompilerOptions())
        assert len(global_compilation_cache()) >= 1
        clear_compilation_cache()
        assert len(global_compilation_cache()) == 0
        assert global_compilation_cache().stats.lookups == 0

    def test_schema_qualifies_key(self, small_graph, tiny_graph):
        program = build_program("rgcn", in_dim=8, out_dim=8)
        options = CompilerOptions()
        key_a = make_cache_key(program, options, small_graph)
        key_b = make_cache_key(program, options, tiny_graph)
        key_none = make_cache_key(program, options)
        assert key_a != key_b and key_a != key_none


class TestElementwiseFusion:
    def test_pass_preserves_validity_and_operator_set(self):
        program = build_program("hgt", in_dim=8, out_dim=8)
        before = {op.name for op in program.operators}
        fused = ElementwiseFusionPass().run(program.clone())
        fused.validate()
        assert {op.name for op in fused.operators} == before
        assert fused.metadata["fusion_groups"] >= 1

    def test_fusion_reduces_hgt_traversal_kernels(self):
        unfused = compile_program(
            build_program("hgt", in_dim=8, out_dim=8),
            CompilerOptions(enable_compilation_cache=False),
        )
        fused = compile_program(
            build_program("hgt", in_dim=8, out_dim=8),
            CompilerOptions(enable_compilation_cache=False, fuse_elementwise=True),
        )
        assert (fused.plan.summary()["num_traversal_kernels"]
                < unfused.plan.summary()["num_traversal_kernels"])

    def test_plan_level_merge_recovers_fusion_from_unfused_lowering(self):
        """fuse_adjacent_traversal_kernels alone rebuilds what greedy fusion does."""
        program = build_program("hgt", in_dim=8, out_dim=8)
        plan = lower_program(program, LoweringOptions(enable_fusion=False, emit_backward=False))
        unfused_count = len([k for k in plan.forward_kernels if isinstance(k, TraversalKernel)])
        merges = fuse_adjacent_traversal_kernels(plan, program)
        merged_count = len([k for k in plan.forward_kernels if isinstance(k, TraversalKernel)])
        assert merges >= 1
        assert merged_count == unfused_count - merges
        assert plan.metadata["merged_traversal_kernels"] == merges
        plan.validate()
        # Values consumed only inside a merged kernel become fused locals.
        merged_kernels = [k for k in plan.forward_kernels
                          if isinstance(k, TraversalKernel) and len(k.source_ops) > 1]
        assert any(k.local_values for k in merged_kernels)

    def test_fused_plan_numerically_identical(self, small_graph):
        from repro.runtime import CompiledRGNNModule
        features = np.random.default_rng(1).standard_normal((small_graph.num_nodes, 8))
        for model in ("rgcn", "rgat", "hgt"):
            plain = compile_program(build_program(model, in_dim=8, out_dim=8),
                                    CompilerOptions(enable_compilation_cache=False))
            fused = compile_program(build_program(model, in_dim=8, out_dim=8),
                                    CompilerOptions(enable_compilation_cache=False, fuse_elementwise=True))
            m0 = CompiledRGNNModule(plain.plan, plain.generated, small_graph, seed=4)
            m1 = CompiledRGNNModule(fused.plan, fused.generated, small_graph, seed=4)
            out0, out1 = m0.forward(features), m1.forward(features)
            for name in out0:
                np.testing.assert_allclose(out0[name], out1[name], atol=1e-10)
            g0 = m0.backward({k: np.ones_like(v) for k, v in out0.items()})
            g1 = m1.backward({k: np.ones_like(v) for k, v in out1.items()})
            for name in g0:
                np.testing.assert_allclose(g0[name], g1[name], atol=1e-10)

    def test_merge_requires_compatible_schedules(self):
        a = TraversalSchedule(rows_per_block=128)
        b = TraversalSchedule(rows_per_block=64)
        assert traversal_schedules_compatible(a, a)
        assert not traversal_schedules_compatible(a, b)
        with pytest.raises(ValueError):
            merge_traversal_schedules(a, b)

    def test_adjacent_merge_respects_aggregation_barrier(self):
        program = ElementwiseFusionPass().run(build_program("hgt", in_dim=8, out_dim=8).clone())
        plan = lower_program(program, LoweringOptions(emit_backward=False))
        fuse_adjacent_traversal_kernels(plan, program)
        traversals = [k for k in plan.forward_kernels if isinstance(k, TraversalKernel)]
        for previous, current in zip(traversals, traversals[1:]):
            # Any still-unmerged adjacent pair must be separated by a barrier
            # or a domain change — never left unmerged gratuitously.
            if plan.forward_kernels.index(current) - plan.forward_kernels.index(previous) == 1:
                assert (previous.domain is not current.domain
                        or any(op.kind == "scatter_add" for op in previous.micro_ops))


class TestGeneratedPrograms:
    def test_fused_program_functions_generated(self):
        result = compile_program(build_program("rgat", in_dim=8, out_dim=8),
                                 CompilerOptions(enable_compilation_cache=False))
        assert result.generated.forward_program is not None
        assert result.generated.backward_program is not None
        assert "def hector_forward(env, ctx):" in result.generated.source

    def test_cuda_source_contains_fused_launch_sequence(self):
        result = compile_program(build_program("hgt", in_dim=8, out_dim=8),
                                 CompilerOptions(enable_compilation_cache=False, fuse_elementwise=True))
        source = result.cuda_source()
        assert "fused forward program" in source
        assert "fused from operators:" in source


class TestBackwardSeeding:
    def _executor_env(self, small_graph, dtype=np.float64):
        result = compile_program(build_program("rgcn", in_dim=4, out_dim=4),
                                 CompilerOptions(enable_compilation_cache=False,
                                                 enable_memory_planning=False))
        executor = PlanExecutor(result.plan, result.generated)
        ctx = GraphContext.from_graph(small_graph)
        rng = np.random.default_rng(0)
        env = {
            "h": rng.standard_normal((small_graph.num_nodes, 4)).astype(dtype),
            "norm": np.ones(small_graph.num_edges, dtype=dtype),
            "W": rng.standard_normal((small_graph.num_edge_types, 4, 4)).astype(dtype),
            "W0": rng.standard_normal((4, 4)).astype(dtype),
        }
        return result, executor, ctx, env

    def test_missing_output_name_raises(self, small_graph):
        _, executor, ctx, env = self._executor_env(small_graph)
        executor.run_forward(env, ctx)
        with pytest.raises(KeyError, match="not_an_output"):
            executor.run_backward(env, ctx, {"not_an_output": np.zeros(1)})

    def test_unseeded_intermediates_zero_seeded(self, small_graph):
        result, executor, ctx, env = self._executor_env(small_graph)
        executor.run_forward(env, ctx)
        output = result.plan.output_names[0]
        # Seed only the declared output; every other forward-written buffer
        # must receive a zero-initialised gradient automatically.
        executor.run_backward(env, ctx, {output: np.zeros_like(env[output])})
        for kernel in result.plan.forward_kernels:
            for name in kernel.written_buffers():
                assert f"grad_{name}" in env
        # With a zero output gradient nothing can accumulate anywhere.
        for name in result.plan.parameter_names:
            np.testing.assert_array_equal(env[f"grad_{name}"], 0.0)

    def test_backward_seeds_respect_environment_dtype(self, small_graph):
        result, executor, ctx, env = self._executor_env(small_graph, dtype=np.float32)
        executor.run_forward(env, ctx)
        output = result.plan.output_names[0]
        env[output] = env[output].astype(np.float32)
        grad = np.ones_like(env[output], dtype=np.float32)
        executor.run_backward(env, ctx, {output: grad})
        assert env[f"grad_{output}"].dtype == np.float32
        # The seed must be a copy, not an alias of the caller's array.
        env[f"grad_{output}"][...] = 0.0
        assert grad[0, 0] == 1.0
