"""ServingEngine behaviour: correctness of scattered outputs, micro-batch
policy (size cap + timeout), plan replay accounting, and telemetry.
"""

import numpy as np
import pytest

from repro.frontend import CompilerOptions, compile_model
from repro.graph import random_hetero_graph
from repro.models import REFERENCE_CLASSES
from repro.serving import EngineStats, ServingEngine, percentile
from repro.serving.stats import BatchRecord

DIM = 8


@pytest.fixture(scope="module")
def graph():
    return random_hetero_graph(
        num_nodes=180, num_edges=900, num_node_types=3, num_edge_types=6,
        seed=31, name="servegraph",
    )


@pytest.fixture(scope="module")
def features(graph):
    return np.random.default_rng(2).standard_normal((graph.num_nodes, DIM))


def _engine(graph, features, **overrides):
    params = dict(
        in_dim=DIM, out_dim=DIM, features=features, fanouts=(None,),
        max_batch_size=4, seed=6, sampler_seed=1,
    )
    params.update(overrides)
    return ServingEngine("rgcn", graph, **params)


class TestQueryCorrectness:
    def test_query_matches_full_graph_reference_at_seeds(self, graph, features):
        engine = _engine(graph, features)
        reference = REFERENCE_CLASSES["rgcn"](graph, DIM, DIM, seed=6)
        reference.load_parameters(
            {k: p.data for k, p in engine.module.parameters_by_name.items()}
        )
        full = reference.forward(features)
        key = next(iter(full))
        seeds = np.array([3, 44, 91, 120])
        result = engine.query(seeds)
        assert result.shape == (len(seeds), DIM)
        np.testing.assert_allclose(result, full[key].data[seeds], atol=1e-8)

    def test_batched_requests_scatter_back_per_request(self, graph, features):
        engine = _engine(graph, features, max_batch_size=8)
        singles = {tuple(seeds): _engine(graph, features).query(np.array(seeds))
                   for seeds in [(1, 2), (50, 61, 72), (2, 100)]}
        requests = [engine.submit(np.array(seeds)) for seeds in singles]
        engine.flush()
        for request, expected in zip(requests, singles.values()):
            assert request.done
            np.testing.assert_allclose(request.result, expected, atol=1e-10)

    def test_duplicate_seeds_within_and_across_requests(self, graph, features):
        engine = _engine(graph, features, max_batch_size=8)
        request_a = engine.submit(np.array([7, 7, 23]))
        request_b = engine.submit(np.array([23, 7]))
        engine.flush()
        np.testing.assert_allclose(request_a.result[0], request_a.result[1])
        np.testing.assert_allclose(request_a.result[0], request_b.result[1])
        np.testing.assert_allclose(request_a.result[2], request_b.result[0])
        # One batch, deduplicated union of seeds.
        assert engine.stats.batches[-1].num_requests == 2
        assert engine.stats.batches[-1].num_seeds == 5

    def test_precompiled_module_can_be_adopted(self, graph, features):
        module = compile_model("rgat", graph, in_dim=DIM, out_dim=DIM,
                               options=CompilerOptions(emit_backward=False), seed=2)
        engine = ServingEngine(module, graph, features=features, max_batch_size=4)
        out = engine.query([10, 20])
        np.testing.assert_allclose(out, module.forward(features)["out"][[10, 20]], atol=1e-8)
        # Adopted modules have no program handle: replay tracking is off.
        assert engine.stats.plan_replay_rate is None

    def test_default_feature_store_makes_quickstart_run(self, graph):
        engine = ServingEngine("rgcn", graph, in_dim=DIM, out_dim=DIM)
        assert engine.query([0, 1]).shape == (2, DIM)


class TestBatchingPolicy:
    def test_flush_respects_max_batch_size(self, graph, features):
        engine = _engine(graph, features, max_batch_size=3)
        for index in range(7):
            engine.submit([index, index + 20])
        completed = engine.flush()
        assert len(completed) == 7 and all(r.done for r in completed)
        assert [record.num_requests for record in engine.stats.batches] == [3, 3, 1]

    def test_serve_burst_fills_batches(self, graph, features):
        engine = _engine(graph, features, max_batch_size=4)
        stream = [np.array([i, i + 30]) for i in range(8)]
        report = engine.serve(stream)
        assert report["batches"] == 2
        assert report["mean_occupancy"] == 4.0
        assert report["plan_replay_rate"] == 1.0
        assert len(engine.stats.request_latencies) == 8

    def test_serve_timeout_splits_sparse_arrivals(self, graph, features):
        engine = _engine(graph, features, max_batch_size=8, batch_timeout_s=0.001)
        stream = [np.array([i]) for i in range(4)]
        arrivals = [0.0, 0.5, 1.0, 1.5]  # far apart vs the 1ms timeout
        report = engine.serve(stream, arrivals)
        assert report["batches"] == 4
        assert report["mean_occupancy"] == 1.0

    def test_serve_requires_matching_arrival_times(self, graph, features):
        engine = _engine(graph, features)
        with pytest.raises(ValueError):
            engine.serve([np.array([0])], arrival_times=[0.0, 1.0])

    def test_rejects_invalid_requests_and_config(self, graph, features):
        engine = _engine(graph, features)
        with pytest.raises(ValueError):
            engine.submit([])
        with pytest.raises(ValueError):
            engine.submit([graph.num_nodes])
        with pytest.raises(ValueError):
            _engine(graph, features, max_batch_size=0)
        with pytest.raises(ValueError):
            _engine(graph, features, batch_timeout_s=-1.0)
        with pytest.raises(ValueError):
            _engine(graph, np.zeros((graph.num_nodes - 1, DIM)))
        with pytest.raises(ValueError):
            _engine(graph, np.zeros((graph.num_nodes, DIM + 2)))


class TestTelemetry:
    def test_report_fields(self, graph, features):
        engine = _engine(graph, features, max_batch_size=4)
        engine.serve([np.array([i, i + 9]) for i in range(6)])
        report = engine.report()
        for field in [
            "requests", "batches", "mean_occupancy", "throughput_rps",
            "seeds_per_s", "latency_p50_ms", "latency_p95_ms",
            "plan_replay_rate", "max_batch_size", "arena_pool_hit_rate",
            "live_arenas", "plan_replays", "plan_recompiles",
        ]:
            assert field in report, field
        assert report["requests"] == 6
        assert report["throughput_rps"] > 0
        assert report["latency_p95_ms"] >= report["latency_p50_ms"]
        assert report["plan_replays"] == report["batches"]
        assert report["plan_recompiles"] == 0

    def test_reset_stats_clears_telemetry_but_keeps_warm_arenas(self, graph, features):
        engine = _engine(graph, features, max_batch_size=4)
        engine.query([1, 2, 3])
        assert engine.stats.num_batches == 1 and engine.plan_replays == 1
        # The shim's arenas live in its router's shared budget (the module's
        # own pool is unused); warm slabs must survive a telemetry reset.
        budget = engine.router.budget
        misses_before = budget.tenant_stats("default").misses
        assert misses_before >= 1 and budget.live_arenas >= 1
        engine.reset_stats()
        assert engine.stats.num_batches == 0
        assert engine.plan_replays == 0 and engine.plan_recompiles == 0
        assert budget.live_arenas >= 1
        engine.query([1, 2, 3])
        # Same-bucket re-query leases the warm arena: no new build.
        assert budget.tenant_stats("default").misses == misses_before

    def test_serve_flushes_previously_submitted_requests_first(self, graph, features):
        engine = _engine(graph, features, max_batch_size=4)
        early = engine.submit([5, 6])
        engine.serve([np.array([i]) for i in range(3)])
        assert early.done and early.result.shape == (2, DIM)

    def test_flush_path_records_service_latency(self, graph, features):
        engine = _engine(graph, features)
        request = engine.submit([3, 4])
        engine.flush()
        assert request.latency_s is not None and request.latency_s > 0
        assert engine.report()["latency_p50_ms"] > 0

    def test_cache_disabled_engine_skips_per_batch_replay_checks(self, graph, features):
        from repro.frontend import CompilerOptions

        engine = _engine(
            graph, features,
            options=CompilerOptions(emit_backward=False, enable_compilation_cache=False),
        )
        engine.query([1, 2])
        engine.query([3, 4])
        # No per-batch recompiles, and replay tracking is off rather than
        # reporting misleading misses.
        assert engine.plan_recompiles == 0 and engine.plan_replays == 0
        assert engine.stats.plan_replay_rate is None

    def test_percentile_and_empty_stats(self):
        assert percentile([], 95) == 0.0
        assert percentile([1.0], 50) == 1.0
        assert percentile([1.0, 2.0, 3.0, 4.0], 50) == pytest.approx(2.5)
        stats = EngineStats()
        assert stats.mean_occupancy == 0.0
        assert stats.requests_per_second == 0.0
        assert stats.plan_replay_rate is None
        stats.record_batch(BatchRecord(
            num_requests=2, num_seeds=3, block_nodes=5, block_edges=4,
            sample_seconds=0.5, execute_seconds=0.5, plan_replayed=True,
        ))
        assert stats.requests_per_second == pytest.approx(2.0)
        assert stats.plan_replay_rate == 1.0


class TestStatsRobustness:
    """Percentile helpers must be total: any history length, any q."""

    def test_percentiles_well_defined_for_zero_and_one_record(self):
        for q in (0, 0.1, 50, 95, 99.9, 100):
            assert percentile([], q) == 0.0
            assert percentile([3.5], q) == 3.5
        stats = EngineStats()
        assert stats.latency_percentile(95) == 0.0
        stats.record_latency(0.25)
        assert stats.latency_percentile(0) == 0.25
        assert stats.latency_percentile(100) == 0.25
        summary = stats.summary()  # must not raise on a 1-record history
        assert summary["latency_p95_ms"] == pytest.approx(250.0)

    def test_out_of_range_q_is_clamped_not_an_index_error(self):
        assert percentile([1.0, 2.0], 150) == 2.0
        assert percentile([1.0, 2.0], -10) == 1.0

    def test_percentile_matches_numpy_on_longer_histories(self):
        values = [0.5, 0.1, 0.9, 0.3, 0.7, 0.2]
        for q in (0, 10, 25, 50, 75, 90, 100):
            assert percentile(values, q) == pytest.approx(float(np.percentile(values, q)))

    def test_report_includes_attached_arena_counters(self, graph, features):
        engine = _engine(graph, features)
        engine.query([1, 2, 3])
        report = engine.stats.report()
        for key in ("arena_hits", "arena_misses", "arena_evictions", "arena_pool_hit_rate"):
            assert key in report, key
        assert report["arena_misses"] >= 1
        # Without an attachment the report is just the summary.
        assert "arena_hits" not in EngineStats().report()


class TestRouterShim:
    """The legacy engine is now a thin shim over a one-endpoint Router."""

    def test_engine_wraps_a_single_default_endpoint(self, graph, features):
        engine = _engine(graph, features)
        assert engine.router.endpoint_names == ["default"]
        assert engine.router.endpoint("default").module is engine.module

    def test_shim_matches_reference_after_reset_and_reuse(self, graph, features):
        engine = _engine(graph, features)
        before = engine.query(np.array([5, 80]))
        engine.reset_stats()
        after = engine.query(np.array([5, 80]))
        np.testing.assert_array_equal(before, after)
        assert engine.stats.num_batches == 1  # reset really restarted

    def test_submit_time_validation_names_the_endpoint(self, graph, features):
        engine = _engine(graph, features)
        with pytest.raises(ValueError, match="endpoint 'default'"):
            engine.submit([graph.num_nodes + 5])
