"""Property-based lockdown of SLO-aware admission control.

Four properties, each driven by hypothesis-generated request streams through
the real serving event loop (:func:`run_serving_loop` with stub executors and
synthetic service times — exactly what :class:`LaneSpec` was decoupled for):

1. A :class:`TokenBucket` never admits more than ``burst + rate * w`` requests
   over *any* window ``w`` of its admission timeline.
2. A lane bounded at ``max_queue_depth`` never holds more admitted-but-
   uncompleted requests than that, for any stream and any worker count —
   and every request ends in exactly one terminal state (completed xor shed).
3. Shed decisions replay deterministically under a virtual clock: the same
   stream through the same policy sheds the same requests, in the same
   execution order, with the same latencies.
4. A request whose deadline expired before dispatch is *never* handed to the
   executor, for any worker count.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.serving import (
    AdmissionController,
    AdmissionPolicy,
    LaneSpec,
    ServingRequest,
    TokenBucket,
    VirtualClock,
    WeightedRoundRobin,
    run_serving_loop,
)

LANES = ("alpha", "beta")

#: A stream spec: per-request ``(inter-arrival gap seconds, lane index)``.
stream_specs = st.lists(
    st.tuples(
        st.floats(min_value=0.0, max_value=0.05, allow_nan=False, allow_infinity=False),
        st.integers(min_value=0, max_value=len(LANES) - 1),
    ),
    min_size=1,
    max_size=40,
)


def build_arrivals(spec):
    """Materialise a stream spec into ``(lane, ServingRequest)`` arrivals.

    The request's single seed id is its stream index, so outcomes can be
    compared across independently-built replicas of the same spec.
    """
    now = 0.0
    arrivals = []
    for index, (gap, which) in enumerate(spec):
        now += gap
        name = LANES[which]
        arrivals.append(
            (name, ServingRequest(seeds=np.array([index]), arrival_s=now, endpoint=name))
        )
    return arrivals


def run_loop(
    arrivals,
    policy,
    *,
    workers=1,
    service_s=0.003,
    max_batch_size=3,
    batch_timeout_s=0.002,
):
    """Drive the serving loop with a stub executor; returns (result, executed).

    ``executed`` collects every request actually handed to the executor —
    the ground truth for "shed work never runs".  Each lane gets its own
    controller (admission budgets are per-endpoint).
    """
    executed = []

    def execute(name, requests):
        for request in requests:
            executed.append(request)
            request.result = np.array([request.arrival_s])
        return service_s

    lanes = {
        name: LaneSpec(
            max_batch_size=max_batch_size,
            batch_timeout_s=batch_timeout_s,
            admission=AdmissionController(policy) if policy is not None else None,
        )
        for name in LANES
    }
    wrr = WeightedRoundRobin()
    for name in LANES:
        wrr.register(name, 1)
    result = run_serving_loop(
        arrivals, lanes, wrr, execute, clock=VirtualClock(), workers=workers
    )
    return result, executed


class TestTokenBucketProperties:
    @given(
        st.tuples(
            st.floats(min_value=0.5, max_value=50.0, allow_nan=False, allow_infinity=False),
            st.integers(min_value=1, max_value=8),
            st.lists(
                st.floats(min_value=0.0, max_value=2.0, allow_nan=False, allow_infinity=False),
                min_size=1,
                max_size=60,
            ),
        )
    )
    @settings(max_examples=80, deadline=None)
    def test_never_admits_above_rate_over_any_window(self, params):
        """Over any window ``[a, b]`` of admission timestamps, admitted count
        <= burst (tokens banked at ``a``) + rate * (b - a) (refill)."""
        rate, burst, gaps = params
        bucket = TokenBucket(rate, burst)
        admitted = []
        now = 0.0
        for gap in gaps:
            now += gap
            if bucket.try_admit(now):
                admitted.append(now)
        for i, start in enumerate(admitted):
            for j in range(i, len(admitted)):
                count = j - i + 1
                window = admitted[j] - start
                assert count <= burst + rate * window + 1e-6, (
                    f"{count} admissions in a {window:.4f}s window "
                    f"(rate={rate}, burst={burst})"
                )

    def test_starts_full_then_rejects_until_refill(self):
        bucket = TokenBucket(rate=2.0, burst=2)
        assert bucket.try_admit(0.0) and bucket.try_admit(0.0)
        assert not bucket.try_admit(0.0)  # burst exhausted
        assert bucket.try_admit(0.5)  # 0.5s * 2/s = one token back
        assert not bucket.try_admit(0.5)
        assert bucket.admitted == 3 and bucket.rejected == 2

    def test_backwards_timestamps_never_mint_tokens(self):
        bucket = TokenBucket(rate=1.0, burst=1)
        assert bucket.try_admit(10.0)
        assert not bucket.try_admit(5.0)  # out-of-order fold: no refill
        assert not bucket.try_admit(10.0)
        assert bucket.try_admit(11.0)


class TestBoundedQueues:
    @given(
        st.tuples(
            stream_specs,
            st.integers(min_value=1, max_value=6),  # max_queue_depth
            st.integers(min_value=1, max_value=4),  # max_batch_size
            st.integers(min_value=1, max_value=3),  # workers
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_depth_never_exceeds_bound_and_requests_conserve(self, params):
        spec, depth, max_batch_size, workers = params
        arrivals = build_arrivals(spec)
        result, executed = run_loop(
            arrivals,
            AdmissionPolicy(max_queue_depth=depth),
            workers=workers,
            max_batch_size=max_batch_size,
        )
        for name, high_water in result.queue_depth_high_water.items():
            assert high_water <= depth, f"lane {name} queued {high_water} > {depth}"
        # Conservation: every request ends completed xor shed, exactly once.
        assert len(result.completed) + len(result.shed) == len(arrivals)
        done_ids = {id(request) for request in result.completed}
        shed_ids = {id(request) for request in result.shed}
        assert not done_ids & shed_ids
        assert all(request.status == "done" for request in result.completed)
        assert all(request.status == "shed-queue" for request in result.shed)
        assert len(executed) == len(result.completed)


class TestDeterministicReplay:
    @given(
        st.tuples(
            stream_specs,
            st.floats(min_value=20.0, max_value=400.0, allow_nan=False, allow_infinity=False),
            st.integers(min_value=1, max_value=4),   # burst
            st.integers(min_value=1, max_value=6),   # max_queue_depth
            st.floats(min_value=0.001, max_value=0.05, allow_nan=False, allow_infinity=False),
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_same_stream_sheds_the_same_requests(self, params):
        """The full outcome — statuses, shed set, execution order, latencies —
        is a pure function of the stream under a virtual clock."""
        spec, rate, burst, depth, deadline = params

        def one_run():
            policy = AdmissionPolicy(
                rate_limit=rate, burst=burst, max_queue_depth=depth, deadline_s=deadline
            )
            arrivals = build_arrivals(spec)
            result, _ = run_loop(arrivals, policy, workers=1, service_s=0.004)
            statuses = [request.status for _, request in arrivals]
            shed = sorted(int(request.seeds[0]) for request in result.shed)
            latencies = sorted(
                (int(request.seeds[0]), request.latency_s) for request in result.completed
            )
            return statuses, shed, result.execution_order, latencies

        assert one_run() == one_run()


class TestDeadlineShedding:
    @given(
        st.tuples(
            stream_specs,
            st.floats(min_value=0.001, max_value=0.02, allow_nan=False, allow_infinity=False),
            st.integers(min_value=1, max_value=3),  # workers
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_expired_requests_are_never_executed(self, params):
        spec, deadline, workers = params
        arrivals = build_arrivals(spec)
        # Service deliberately comparable to the deadline so queues miss SLOs.
        result, executed = run_loop(
            arrivals,
            AdmissionPolicy(deadline_s=deadline),
            workers=workers,
            service_s=0.01,
            max_batch_size=2,
        )
        executed_ids = {id(request) for request in executed}
        for request in result.shed:
            assert request.status == "shed-deadline"
            assert id(request) not in executed_ids, "a shed request reached the executor"
            assert request.result is None
        for request in result.completed:
            assert id(request) in executed_ids
            assert request.status == "done"

    def test_deadline_is_absolute_from_arrival(self):
        controller = AdmissionController(AdmissionPolicy(deadline_s=0.5))
        request = ServingRequest(seeds=np.array([0]), arrival_s=2.0)
        assert controller.admit(request, 2.0, queue_depth=0) is None
        assert request.deadline_s == 2.5
        assert not AdmissionController.deadline_expired(request, 2.5)  # boundary holds
        assert AdmissionController.deadline_expired(request, 2.5 + 1e-9)


class TestControllerAndPolicy:
    def test_queue_check_precedes_rate_bucket(self):
        """A backpressured request must not also burn a rate token."""
        controller = AdmissionController(
            AdmissionPolicy(rate_limit=1.0, burst=1, max_queue_depth=1)
        )
        first = ServingRequest(seeds=np.array([0]), arrival_s=0.0)
        assert controller.admit(first, 0.0, queue_depth=0) is None  # burns the token
        backpressured = ServingRequest(seeds=np.array([1]), arrival_s=0.0)
        assert controller.admit(backpressured, 0.0, queue_depth=1) == "shed-queue"
        assert controller.bucket.rejected == 0, "shed-queue burned a rate token"
        rated = ServingRequest(seeds=np.array([2]), arrival_s=0.0)
        assert controller.admit(rated, 0.0, queue_depth=0) == "shed-rate"
        assert backpressured.shed and rated.shed

    def test_policy_validation(self):
        with pytest.raises(ValueError, match="rate_limit"):
            AdmissionPolicy(rate_limit=0.0)
        with pytest.raises(ValueError, match="burst needs a rate_limit"):
            AdmissionPolicy(burst=4)
        with pytest.raises(ValueError, match="burst"):
            AdmissionPolicy(rate_limit=10.0, burst=0)
        with pytest.raises(ValueError, match="max_queue_depth"):
            AdmissionPolicy(max_queue_depth=0)
        with pytest.raises(ValueError, match="deadline_s"):
            AdmissionPolicy(deadline_s=0.0)
        # Default burst: one second's worth of traffic, at least one token.
        assert AdmissionPolicy(rate_limit=2.5).effective_burst == 3
        assert AdmissionPolicy(rate_limit=0.5).effective_burst == 1
        assert AdmissionPolicy().effective_burst is None

    def test_unlimited_policy_admits_everything(self):
        controller = AdmissionController(AdmissionPolicy())
        for index in range(50):
            request = ServingRequest(seeds=np.array([index]), arrival_s=0.0)
            assert controller.admit(request, 0.0, queue_depth=index) is None
            assert request.status == "queued" and request.deadline_s is None
