"""Multi-layer stacks served through router endpoints.

The per-seed/per-hop block cache unblocked :class:`MultiLayerModule` serving:
an endpoint that adopts a stack samples per-hop blocks, assembles them from
per-seed cached draws, and executes layer-by-hop through ``forward_blocks``.
These tests pin the correctness contract — endpoint rows match
``forward_full`` at the seeds for every model family — plus the budget and
cache plumbing specific to stacks (one tenant per planned layer, per-hop
entries in the per-seed cache).
"""

import numpy as np
import pytest

from repro.frontend import CompilerOptions
from repro.graph import random_hetero_graph
from repro.models import MODEL_NAMES
from repro.runtime import MultiLayerModule
from repro.serving import Router

DIM = 8
OPTIONS = CompilerOptions(emit_backward=False)
SEEDS = np.array([1, 7, 19, 33, 50])


@pytest.fixture(scope="module")
def graph():
    return random_hetero_graph(
        num_nodes=60, num_edges=300, num_node_types=3, num_edge_types=6,
        seed=3, name="stack-graph",
    )


@pytest.fixture(scope="module")
def features(graph):
    return np.random.default_rng(0).standard_normal((graph.num_nodes, DIM))


@pytest.fixture(scope="module")
def stacks(graph):
    return {
        model: MultiLayerModule.build(model, graph, dims=(DIM, DIM, DIM),
                                      options=OPTIONS, seed=5)
        for model in MODEL_NAMES
    }


class TestStackEndpoints:
    @pytest.mark.parametrize("model", MODEL_NAMES)
    def test_endpoint_rows_match_forward_full_at_seeds(self, model, graph, features, stacks):
        stack = stacks[model]
        full = stack.forward_full(features).output
        router = Router(arena_capacity_bytes=64 << 20)
        router.register(f"{model}-stack", stack, graph,
                        fanouts=(None, None), features=features)
        rows = router.query(f"{model}-stack", SEEDS)
        np.testing.assert_allclose(rows, full[SEEDS], atol=1e-8)

    def test_served_stream_matches_forward_full_per_request(self, graph, features, stacks):
        """A timed multi-request stream through ``serve`` (micro-batched,
        per-hop cached) returns the full-graph rows for every request."""
        stack = stacks["rgcn"]
        full = stack.forward_full(features).output
        router = Router(arena_capacity_bytes=64 << 20)
        router.register("stack", stack, graph, fanouts=(None, None),
                        features=features, max_batch_size=4)
        rng = np.random.default_rng(3)
        stream = [
            ("stack", rng.choice(graph.num_nodes, size=3, replace=False), index * 0.001)
            for index in range(12)
        ]
        report = router.serve(stream)
        assert report["serve"]["completed"] == len(stream)
        for request in router.last_served:
            assert request.status == "done"
            np.testing.assert_allclose(request.result, full[request.seeds], atol=1e-8)

    def test_layer_tenants_appear_in_the_shared_budget(self, graph, features, stacks):
        router = Router(arena_capacity_bytes=64 << 20)
        router.register("stack", stacks["rgat"], graph,
                        fanouts=(None, None), features=features)
        router.query("stack", SEEDS)
        tenants = router.report()["arena_budget"]["tenants"]
        layer_tenants = {name for name in tenants if name.startswith("stack/layer")}
        assert layer_tenants == {"stack/layer0", "stack/layer1"}
        for name in layer_tenants:
            assert tenants[name]["misses"] >= 1, f"{name} never built an arena"

    def test_per_seed_cache_serves_repeated_stack_batches(self, graph, features, stacks):
        router = Router(arena_capacity_bytes=64 << 20)
        router.register("stack", stacks["hgt"], graph,
                        fanouts=(None, None), features=features)
        endpoint = router.endpoint("stack")
        first = router.query("stack", SEEDS)
        hits_before = endpoint.block_cache_hits
        second = router.query("stack", SEEDS)
        assert endpoint.block_cache_hits == hits_before + 1
        np.testing.assert_array_equal(first, second)
        # Per-hop entries: one positions dict per layer in each seed's draw.
        entry = endpoint._seed_cache[int(SEEDS[0])]
        assert isinstance(entry.positions, list) and len(entry.positions) == 2

    def test_stack_needs_one_fanout_per_layer(self, graph, features, stacks):
        router = Router()
        with pytest.raises(ValueError, match="one fanout per layer"):
            router.register("stack", stacks["rgcn"], graph,
                            fanouts=(None,), features=features)
        # The failed registration left no phantom tenants behind.
        assert router.report()["arena_budget"]["tenants"] == {}
        assert "stack" not in router
