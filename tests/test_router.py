"""Router behaviour: registration, submit-time seed validation, cross-endpoint
fairness (weighted round-robin), shared-arena-budget eviction ordering,
block-cache hit/invalidation semantics, and multi-tenant result isolation.
"""

from collections import deque

import numpy as np
import pytest

from repro.frontend import CompilerOptions, compile_model
from repro.graph import random_hetero_graph
from repro.runtime import GraphContext, SharedArenaBudget
from repro.serving import (
    Router,
    ScheduledBatch,
    ServingEngine,
    VirtualClock,
    WeightedRoundRobin,
    partition_into_batches,
    run_event_loop,
)
from repro.serving.endpoint import ServingRequest

DIM = 8

#: Inference options shared by every endpoint in these tests.
OPTIONS = CompilerOptions(emit_backward=False)


@pytest.fixture(scope="module")
def graph_a():
    return random_hetero_graph(num_nodes=120, num_edges=500, num_node_types=2,
                               num_edge_types=4, seed=7, name="tenant-a")


@pytest.fixture(scope="module")
def graph_b():
    return random_hetero_graph(num_nodes=200, num_edges=900, num_node_types=3,
                               num_edge_types=6, seed=8, name="tenant-b")


def _router(**kwargs) -> Router:
    return Router(**kwargs)


def _register(router, name, graph, model="rgcn", **overrides):
    params = dict(in_dim=DIM, out_dim=DIM, options=OPTIONS, fanouts=(None,),
                  max_batch_size=4, sampler_seed=1, seed=3)
    params.update(overrides)
    return router.register(name, model, graph, **params)


class TestRegistration:
    def test_duplicate_names_rejected(self, graph_a):
        router = _router()
        _register(router, "a", graph_a)
        with pytest.raises(ValueError, match="already registered"):
            _register(router, "a", graph_a)

    def test_unknown_endpoint_errors_list_known(self, graph_a):
        router = _router()
        _register(router, "a", graph_a)
        with pytest.raises(ValueError, match="unknown endpoint 'nope'.*'a'"):
            router.submit("nope", [0])

    def test_invalid_config_rejected(self, graph_a):
        router = _router()
        with pytest.raises(ValueError, match="priority"):
            _register(router, "p", graph_a, priority=0)
        with pytest.raises(ValueError, match="max_batch_size"):
            _register(router, "m", graph_a, max_batch_size=0)
        with pytest.raises(ValueError, match="block_cache_size"):
            _register(router, "c", graph_a, block_cache_size=-1)
        with pytest.raises(ValueError):
            Router(arena_capacity_bytes=0)

    def test_failed_registration_rolls_back_the_budget_tenant(self, graph_a):
        router = _router()
        bad_features = np.zeros((graph_a.num_nodes - 1, DIM))
        with pytest.raises(ValueError, match="feature store"):
            _register(router, "ghost", graph_a, features=bad_features,
                      arena_budget=1 << 20)
        # No phantom tenant, no sticky cap from the failed attempt.
        assert not router.budget.has_tenant("ghost")
        assert "ghost" not in router.budget.report()["tenants"]
        endpoint = _register(router, "ghost", graph_a)
        router.query("ghost", [1, 2])
        assert router.budget.report()["tenants"]["ghost"]["capacity_bytes"] is None
        assert endpoint.stats.num_batches == 1

    def test_adopted_module_endpoint(self, graph_a):
        module = compile_model("rgat", graph_a, in_dim=DIM, out_dim=DIM,
                               options=OPTIONS, seed=2)
        router = _router()
        router.register("adopted", module, graph_a, max_batch_size=4)
        out = router.query("adopted", [5, 9])
        np.testing.assert_allclose(
            out, module.forward(router.endpoint("adopted").features)["out"][[5, 9]], atol=1e-8
        )
        assert router.endpoint("adopted").stats.plan_replay_rate is None


class TestSeedValidation:
    def test_out_of_range_seeds_fail_at_submit_naming_endpoint_and_ids(self, graph_a):
        router = _router()
        _register(router, "tenant-x", graph_a)
        with pytest.raises(ValueError, match=r"endpoint 'tenant-x'.*\[999\].*tenant-a"):
            router.submit("tenant-x", [3, 999])
        with pytest.raises(ValueError, match=r"endpoint 'tenant-x'.*\[-1\]"):
            router.submit("tenant-x", [-1])
        with pytest.raises(ValueError, match="endpoint 'tenant-x'.*at least one seed"):
            router.submit("tenant-x", [])
        # Nothing was admitted: the queue is clean after the failures.
        assert router.endpoint("tenant-x").pending == []

    def test_long_offender_lists_are_elided(self, graph_a):
        router = _router()
        _register(router, "x", graph_a)
        bad = list(range(1000, 1012))
        with pytest.raises(ValueError, match=r"\.\.\."):
            router.submit("x", bad)


class TestFairness:
    def test_weighted_round_robin_interleaves_by_priority(self):
        wrr = WeightedRoundRobin()
        wrr.register("heavy", 3)
        wrr.register("light", 1)
        order = [wrr.pick(["heavy", "light"]) for _ in range(8)]
        assert order.count("heavy") == 6 and order.count("light") == 2
        # Smooth WRR interleaves instead of bursting: light is served within
        # every window of 4, never starved to the end.
        assert "light" in order[:4] and "light" in order[4:]

    def test_wrr_rejects_unknown_and_invalid(self):
        wrr = WeightedRoundRobin()
        with pytest.raises(ValueError):
            wrr.register("x", 0)
        wrr.register("x", 1)
        with pytest.raises(KeyError):
            wrr.pick(["y"])
        with pytest.raises(ValueError):
            wrr.pick([])

    def test_router_execution_log_respects_priorities_under_skewed_load(self, graph_a, graph_b):
        router = _router()
        _register(router, "heavy", graph_a, priority=3, max_batch_size=2)
        _register(router, "light", graph_b, priority=1, max_batch_size=2)
        # Skewed load: both flooded at t=0, every batch ready immediately.
        for index in range(8):
            router.submit("heavy", [index, index + 10])
            router.submit("light", [index, index + 20])
        router.flush()
        order = router.execution_log
        assert order.count("heavy") == 4 and order.count("light") == 4
        window = order[:4]
        assert window.count("heavy") == 3 and window.count("light") == 1

    def test_event_loop_advances_virtual_clock_to_arrivals(self):
        executed = []

        def execute(name, requests):
            executed.append(name)
            return 0.001

        wrr = WeightedRoundRobin()
        wrr.register("a", 1)
        queue = deque([
            ScheduledBatch("a", [ServingRequest(seeds=np.array([0]), arrival_s=0.5)], ready_s=0.5),
        ])
        result = run_event_loop({"a": queue}, wrr, execute, clock=VirtualClock())
        assert executed == ["a"]
        # Clock jumped to the arrival, then accounted the measured service.
        assert result.final_clock_s == pytest.approx(0.501)
        assert result.completed[0].latency_s == pytest.approx(0.001)

    def test_realtime_serve_waits_for_monotonic_arrivals(self, graph_a):
        router = _router()
        _register(router, "rt", graph_a, max_batch_size=2, batch_timeout_s=0.0)
        report = router.serve(
            [("rt", [1], 0.0), ("rt", [2], 0.02)], realtime=True
        )
        assert report["endpoints"]["rt"]["requests"] == 2
        # The second request could not start before its real arrival, so its
        # wall-clock latency is bounded by service time, not by the gap.
        latencies = router.endpoint("rt").stats.request_latencies
        assert len(latencies) == 2 and all(lat > 0 for lat in latencies)

    def test_partition_matches_legacy_batching_rule(self):
        requests = [ServingRequest(seeds=np.array([i]), arrival_s=t)
                    for i, t in enumerate([0.0, 0.0005, 0.001, 0.5, 1.0])]
        batches = partition_into_batches(requests, "e", max_batch_size=8, batch_timeout_s=0.002)
        assert [len(b.requests) for b in batches] == [3, 1, 1]
        # Non-full batches become ready when the oldest member's window expires.
        assert batches[0].ready_s == pytest.approx(0.002)
        assert batches[1].ready_s == pytest.approx(0.502)


class TestSharedBudget:
    def _module_and_ctxs(self, graph_small, graph_big):
        module = compile_model("rgcn", graph_small, in_dim=DIM, out_dim=DIM,
                               options=OPTIONS, seed=0)
        return module, GraphContext.cached(graph_small), GraphContext.cached(graph_big)

    def test_eviction_is_lru_across_tenants(self, graph_a, graph_b):
        module, ctx_small, ctx_big = self._module_and_ctxs(graph_a, graph_b)
        planner = module.memory_planner
        budget = SharedArenaBudget()
        source_a = budget.tenant("a")
        source_b = budget.tenant("b")
        lease_a = source_a.lease(planner, ctx_small)
        size_small = lease_a.arena.arena_bytes()
        lease_b = source_b.lease(planner, ctx_big)
        size_big = lease_b.arena.arena_bytes()
        assert budget.live_arenas == 2
        assert source_a.stats.misses == 1 and source_b.stats.misses == 1

        # Cap to exactly the current footprint: leasing a new bucket evicts
        # the least-recently-used arena, which belongs to tenant "a".
        budget.capacity_bytes = size_small + size_big
        source_b.lease(planner, ctx_small)  # b's small-bucket arena (new key)
        assert budget.eviction_log[0][0] == "a"
        assert source_a.stats.evictions == 1 and source_b.stats.evictions == 0
        assert budget.live_bytes <= budget.capacity_bytes

        # Re-leasing a's bucket is a miss now (rebuilt), evicting b's LRU.
        source_a.lease(planner, ctx_small)
        assert source_a.stats.misses == 2
        assert budget.eviction_log[1][0] == "b"

    def test_use_time_touch_protects_recently_executed_arenas(self, graph_a, graph_b):
        module, ctx_small, ctx_big = self._module_and_ctxs(graph_a, graph_b)
        planner = module.memory_planner
        budget = SharedArenaBudget()
        source = budget.tenant("t")
        lease_small = source.lease(planner, ctx_small)
        lease_big = source.lease(planner, ctx_big)
        # Binding an env through the *older* lease refreshes its recency:
        # LRU order is by use, not by lease creation.
        lease_small.bind({})
        budget.capacity_bytes = lease_small.arena.arena_bytes() + lease_big.arena.arena_bytes()
        tiny_ctx = GraphContext.cached(
            random_hetero_graph(num_nodes=60, num_edges=200, num_node_types=2,
                                num_edge_types=4, seed=99, name="tiny-bucket")
        )
        source.lease(planner, tiny_ctx)
        # Exactly one eviction — the big arena (stale); small (touched) stayed.
        assert source.stats.evictions == 1
        hits_before = source.stats.hits
        source.lease(planner, ctx_small)
        assert source.stats.hits == hits_before + 1  # small survived
        source.lease(planner, ctx_big)
        assert source.stats.misses == 4  # big was the eviction victim

    def test_per_tenant_cap_evicts_only_that_tenant(self, graph_a, graph_b):
        module, ctx_small, ctx_big = self._module_and_ctxs(graph_a, graph_b)
        planner = module.memory_planner
        budget = SharedArenaBudget()
        source_a = budget.tenant("a")
        lease = source_a.lease(planner, ctx_small)
        budget.tenant("a", capacity_bytes=lease.arena.arena_bytes())
        source_b = budget.tenant("b")
        source_b.lease(planner, ctx_small)
        # a's next (bigger-bucket) arena busts a's own cap: a's small arena
        # goes, b is untouched.
        source_a.lease(planner, ctx_big)
        assert source_a.stats.evictions == 1
        assert source_b.stats.evictions == 0
        assert budget.live_arenas == 2

    def test_high_water_and_report(self, graph_a, graph_b):
        module, ctx_small, ctx_big = self._module_and_ctxs(graph_a, graph_b)
        budget = SharedArenaBudget()
        source = budget.tenant("t")
        source.lease(module.memory_planner, ctx_small)
        source.lease(module.memory_planner, ctx_big)
        report = budget.report()
        assert report["live_arenas"] == 2
        assert report["high_water_bytes"] == report["live_bytes"] > 0
        assert report["tenants"]["t"]["misses"] == 2
        assert report["tenants"]["t"]["high_water_bytes"] == report["live_bytes"]

    def test_max_arenas_count_bound_evicts_like_the_old_pool(self, graph_a, graph_b):
        module, ctx_small, ctx_big = self._module_and_ctxs(graph_a, graph_b)
        budget = SharedArenaBudget(max_arenas=1)
        source = budget.tenant("t")
        source.lease(module.memory_planner, ctx_small)
        source.lease(module.memory_planner, ctx_big)
        assert budget.live_arenas == 1
        assert source.stats.evictions == 1
        with pytest.raises(ValueError):
            SharedArenaBudget(max_arenas=0)

    def test_unknown_tenant_lease_is_an_error(self, graph_a):
        module = compile_model("rgcn", graph_a, in_dim=DIM, out_dim=DIM,
                               options=OPTIONS, seed=0)
        budget = SharedArenaBudget()
        with pytest.raises(KeyError, match="unknown tenant"):
            budget.lease("ghost", module.memory_planner, GraphContext.cached(graph_a))


class TestBlockCache:
    def test_hot_seed_sets_hit_and_results_match_fresh_sampling(self, graph_a):
        router = _router()
        _register(router, "hot", graph_a, block_cache_size=4)
        first = router.query("hot", [3, 7, 11])
        again = router.query("hot", [3, 7, 11])
        endpoint = router.endpoint("hot")
        assert endpoint.block_cache_hits == 1 and endpoint.block_cache_misses == 1
        np.testing.assert_array_equal(first, again)
        # Seed order and duplicates never fragment the cache: the key is the
        # frozen (sorted, deduplicated) union.
        router.query("hot", [11, 3, 7, 3])
        assert endpoint.block_cache_hits == 2

    def test_lru_eviction_and_invalidation(self, graph_a):
        router = _router()
        _register(router, "small-cache", graph_a, block_cache_size=2)
        endpoint = router.endpoint("small-cache")
        router.query("small-cache", [1])
        router.query("small-cache", [2])
        router.query("small-cache", [3])  # evicts the [1] block
        assert endpoint.block_cache_evictions == 1
        router.query("small-cache", [1])  # miss: was evicted
        assert endpoint.block_cache_misses == 4 and endpoint.block_cache_hits == 0
        router.query("small-cache", [1])  # hit now
        assert endpoint.block_cache_hits == 1
        dropped = endpoint.invalidate_block_cache()
        assert dropped == 2 and endpoint.block_cache_len == 0
        router.query("small-cache", [1])
        assert endpoint.block_cache_misses == 5

    def test_disabled_cache_records_nothing(self, graph_a):
        router = _router()
        _register(router, "nocache", graph_a, block_cache_size=0)
        router.query("nocache", [1, 2])
        router.query("nocache", [1, 2])
        endpoint = router.endpoint("nocache")
        assert endpoint.block_cache_hits == 0 and endpoint.block_cache_misses == 0
        assert all(record.block_cache_hit is None for record in endpoint.stats.batches)
        assert "block_cache_hit_rate" not in endpoint.report()

    def test_every_sampled_batch_draws_fresh_neighborhoods(self, graph_a):
        """Serving has no training epochs: each sampled batch advances the
        sampler epoch, so under finite fanouts a repeated seed set is *not*
        frozen to its first draw (block reuse is the cache's job — with the
        cache on, hits return the cached block and skip sampling)."""
        router = _router()
        _register(router, "fresh", graph_a, block_cache_size=0, fanouts=(2,))
        endpoint = router.endpoint("fresh")
        router.query("fresh", [1, 2, 3])
        epoch_after_first = endpoint.sampler.epoch
        router.query("fresh", [1, 2, 3])
        assert endpoint.sampler.epoch == epoch_after_first + 1

        router = _router()
        _register(router, "cached", graph_a, block_cache_size=4, fanouts=(2,))
        endpoint = router.endpoint("cached")
        router.query("cached", [1, 2, 3])
        epoch_after_first = endpoint.sampler.epoch
        router.query("cached", [1, 2, 3])  # cache hit: no sampling, no epoch
        assert endpoint.sampler.epoch == epoch_after_first


class TestMultiTenantIsolation:
    def test_mixed_stream_rows_match_isolated_serving(self, graph_a, graph_b):
        def build(only=None):
            router = _router()
            if only in (None, "rgcn-a"):
                _register(router, "rgcn-a", graph_a, model="rgcn", seed=4)
            if only in (None, "hgt-b"):
                _register(router, "hgt-b", graph_b, model="hgt", seed=5)
            return router

        stream = [("rgcn-a", [i, i + 13]) if i % 2 == 0 else ("hgt-b", [i, i + 31])
                  for i in range(12)]
        consolidated = build()
        consolidated_requests = [consolidated.submit(n, s) for n, s in stream]
        consolidated.serve()

        for name in ("rgcn-a", "hgt-b"):
            isolated = build(only=name)
            expected = [isolated.submit(n, s) for n, s in stream if n == name]
            isolated.serve()
            got = [r for r in consolidated_requests if r.endpoint == name]
            assert len(got) == len(expected)
            for consolidated_request, isolated_request in zip(got, expected):
                np.testing.assert_array_equal(
                    consolidated_request.result, isolated_request.result
                )

    def test_aggregate_report_pools_endpoints(self, graph_a, graph_b):
        router = _router()
        _register(router, "a", graph_a)
        _register(router, "b", graph_b, model="rgat")
        router.serve([("a", [1, 2]), ("b", [3]), ("a", [4])])
        report = router.report()
        assert set(report["endpoints"]) == {"a", "b"}
        assert report["aggregate"]["requests"] == 3
        assert report["aggregate"]["endpoints"] == 2
        assert report["arena_budget"]["live_arenas"] >= 1
        for row in report["endpoints"].values():
            assert "arena_hits" in row and "arena_pool_hit_rate" in row

    def test_reset_stats_keeps_warm_state(self, graph_a):
        router = _router()
        _register(router, "a", graph_a, block_cache_size=4)
        router.query("a", [1, 2])
        endpoint = router.endpoint("a")
        assert endpoint.stats.num_batches == 1
        cached = endpoint.block_cache_len
        router.reset_stats()
        assert endpoint.stats.num_batches == 0
        assert endpoint.block_cache_len == cached  # warm cache survives
        assert router.execution_log == []


class TestEngineShim:
    def test_engine_is_a_one_endpoint_router(self, graph_a):
        engine = ServingEngine("rgcn", graph_a, in_dim=DIM, out_dim=DIM,
                               max_batch_size=4, seed=3, sampler_seed=1)
        assert engine.router.endpoint_names == ["default"]
        # The shim disables the block cache: legacy engines resample every
        # batch, and the shim's contract is bit-identical behaviour.
        assert engine.router.endpoint("default").block_cache_size == 0

    def test_engine_results_match_router_endpoint(self, graph_a):
        engine = ServingEngine("rgcn", graph_a, in_dim=DIM, out_dim=DIM,
                               max_batch_size=4, seed=3, sampler_seed=1)
        router = _router()
        _register(router, "same", graph_a, seed=3, block_cache_size=0)
        np.testing.assert_array_equal(
            engine.query([2, 9, 40]), router.query("same", [2, 9, 40])
        )

    def test_engine_report_exposes_budget_counters(self, graph_a):
        engine = ServingEngine("rgcn", graph_a, in_dim=DIM, out_dim=DIM)
        engine.query([0, 1])
        report = engine.report()
        for key in ("arena_hits", "arena_misses", "arena_evictions",
                    "arena_pool_hit_rate", "live_arenas"):
            assert key in report, key
        assert report["arena_misses"] >= 1
