"""Unit tests for the mixed backend, the artifact cache, and their wiring.

Tier-1 (unmarked): the differential sweep in ``test_property_compiled.py``
locks bit-identity across the full configuration matrix; these tests cover
the machinery itself — assignment resolution, occupancy memoisation,
artifact-cache corruption handling, option validation, and the beam search —
on small deterministic inputs.
"""

import json

import numpy as np
import pytest

from repro.frontend.compiler import compile_model, compile_program
from repro.frontend.config import CompilerOptions
from repro.graph.generators import random_hetero_graph
from repro.graph.hetero_graph import HeteroGraph
from repro.ir.codegen.artifact_cache import (
    ARTIFACT_FORMAT_VERSION,
    CACHE_ENV,
    ArtifactCache,
    artifact_key_for,
    default_artifact_cache,
)
from repro.ir.codegen.mixed_backend import (
    ASSIGN_CODEGEN,
    ASSIGN_INTERP,
    MixedGeneratedModule,
    resolve_assignment,
)
from repro.ir.codegen.registry import available_backends
from repro.models import build_program
from repro.tuner import TuningSpace, beam_search_assignment


@pytest.fixture
def isolated_cache(tmp_path, monkeypatch):
    """Repoint the artifact cache at a private directory for this test."""
    monkeypatch.setenv(CACHE_ENV, str(tmp_path / "codegen"))
    return default_artifact_cache()


def _graph(seed=13):
    return random_hetero_graph(24, 90, 2, 4, seed=seed)


def _sparse_graph():
    """Deterministic graph with empty relations (occupancy specialisation)."""
    rng = np.random.default_rng(5)
    edges = {}
    for r in range(6):
        key = (f"nt{r % 2}", f"rel{r}", f"nt{(r + 1) % 2}")
        if r in (1, 4):
            edges[key] = (np.zeros(0, dtype=np.int64), np.zeros(0, dtype=np.int64))
        else:
            edges[key] = (rng.integers(0, 20, 30), rng.integers(0, 20, 30))
    return HeteroGraph({"nt0": 20, "nt1": 20}, edges)


def _mixed_options(**overrides):
    return CompilerOptions(backend="mixed", emit_backward=True, **overrides)


# ----------------------------------------------------------------------
# Artifact cache
# ----------------------------------------------------------------------
class TestArtifactCache:
    def test_round_trip_hit_skips_generation(self, isolated_cache):
        cache = isolated_cache
        calls = []

        def generate():
            calls.append(1)
            return "x = 41 + 1\n"

        source1, code1 = cache.load_or_generate("k1", "<t>", generate)
        source2, code2 = cache.load_or_generate("k1", "<t>", generate)
        assert calls == [1]
        assert source1 == source2
        namespace = {}
        exec(code2, namespace)
        assert namespace["x"] == 42
        stats = cache.stats()
        assert stats["hits"] == 1 and stats["misses"] == 1 and stats["stores"] == 1

    def test_corrupt_record_is_a_miss_not_a_crash(self, isolated_cache):
        cache = isolated_cache
        cache.load_or_generate("k1", "<t>", lambda: "x = 1\n")
        path = cache.directory / "k1.json"
        path.write_text("{definitely not json")
        source, code = cache.load_or_generate("k1", "<t>", lambda: "x = 2\n")
        assert source == "x = 2\n"
        assert cache.stats()["misses"] >= 2

    def test_stale_source_hash_regenerates(self, isolated_cache):
        cache = isolated_cache
        cache.load_or_generate("k1", "<t>", lambda: "x = 1\n")
        path = cache.directory / "k1.json"
        record = json.loads(path.read_text())
        record["source"] = "x = 999\n"  # tampered without updating source_sha
        path.write_text(json.dumps(record))
        source, _ = cache.load_or_generate("k1", "<t>", lambda: "x = 3\n")
        assert source == "x = 3\n"

    def test_format_version_mismatch_regenerates(self, isolated_cache):
        cache = isolated_cache
        cache.load_or_generate("k1", "<t>", lambda: "x = 1\n")
        path = cache.directory / "k1.json"
        record = json.loads(path.read_text())
        record["version"] = ARTIFACT_FORMAT_VERSION + 1
        path.write_text(json.dumps(record))
        assert cache.load("k1") is None

    def test_none_key_disables_persistence(self, isolated_cache):
        cache = isolated_cache
        cache.load_or_generate(None, "<t>", lambda: "x = 1\n")
        assert not list(cache.directory.glob("*.json")) if cache.directory.exists() else True
        assert cache.stats()["stores"] == 0

    def test_env_override_is_re_resolved(self, tmp_path, monkeypatch):
        monkeypatch.setenv(CACHE_ENV, str(tmp_path / "a"))
        cache_a = default_artifact_cache()
        assert cache_a.directory == tmp_path / "a"
        monkeypatch.setenv(CACHE_ENV, str(tmp_path / "b"))
        cache_b = default_artifact_cache()
        assert cache_b.directory == tmp_path / "b"
        assert cache_b is not cache_a
        assert cache_b.stats() == {"hits": 0, "misses": 0, "stores": 0, "errors": 0}

    def test_artifact_key_discriminates_extras(self):
        base = ("some", "cache", "key")
        k1 = artifact_key_for(base)
        k2 = artifact_key_for(base, ("occupancy", ((True, False), (True,))))
        k3 = artifact_key_for(base)
        assert k1 == k3
        assert k1 != k2

    def test_store_tolerates_unwritable_directory(self, tmp_path):
        cache = ArtifactCache(tmp_path / "file-not-dir")
        (tmp_path / "file-not-dir").write_text("occupied")
        cache.store("k", "x = 1\n", compile("x = 1\n", "<t>", "exec"))
        assert cache.stats()["errors"] == 1


# ----------------------------------------------------------------------
# Registry / option / space validation
# ----------------------------------------------------------------------
class TestValidation:
    def test_available_backends_sorted_and_contains_mixed(self):
        names = available_backends()
        assert isinstance(names, tuple)
        assert list(names) == sorted(names)
        assert "mixed" in names

    def test_tuning_space_rejects_unknown_backend(self):
        with pytest.raises(ValueError, match="no-such-backend"):
            TuningSpace(backends=("python-interp", "no-such-backend"))

    def test_tuning_space_error_names_available_backends(self):
        with pytest.raises(ValueError, match="mixed"):
            TuningSpace(backends=("typo",))

    def test_tuning_space_rejects_non_executing_backend(self):
        with pytest.raises(ValueError, match="cuda-emit"):
            TuningSpace(backends=("cuda-emit",))

    def test_mixed_assignment_requires_mixed_backend(self):
        with pytest.raises(ValueError, match="backend='mixed'"):
            CompilerOptions(backend="python-interp", mixed_assignment=(("k", "interp"),))

    def test_mixed_assignment_rejects_bad_tokens(self):
        with pytest.raises(ValueError, match="turbo"):
            CompilerOptions(backend="mixed", mixed_assignment=(("k", "turbo"),))

    def test_mixed_assignment_json_round_trip(self):
        options = CompilerOptions(
            backend="mixed", mixed_assignment=(("gemm_1", "codegen"), ("t_1", "interp"))
        )
        restored = CompilerOptions.from_dict(json.loads(json.dumps(options.to_dict())))
        assert restored.mixed_assignment == options.mixed_assignment
        assert restored.cache_key() == options.cache_key()

    def test_mixed_assignment_changes_cache_key(self):
        base = CompilerOptions(backend="mixed")
        assigned = CompilerOptions(backend="mixed", mixed_assignment=(("k", "interp"),))
        assert base.cache_key() != assigned.cache_key()

    def test_resolve_assignment_rejects_unknown_kernels(self):
        program = build_program("rgcn", in_dim=4, out_dim=4)
        result = compile_program(program, _mixed_options(), graph=_graph())
        with pytest.raises(ValueError, match="no_such_kernel"):
            resolve_assignment(result.plan, explicit=(("no_such_kernel", "interp"),))


# ----------------------------------------------------------------------
# Mixed generation
# ----------------------------------------------------------------------
class TestMixedGeneration:
    def test_explicit_assignment_shapes_the_source(self, isolated_cache):
        program = build_program("rgcn", in_dim=4, out_dim=4)
        graph = _graph()
        result = compile_program(
            program, _mixed_options(enable_compilation_cache=False), graph=graph
        )
        forward_names = [k.name for k in result.plan.forward_kernels]
        backward_names = [k.name for k in result.plan.backward_kernels]
        assignment = tuple((n, "interp") for n in forward_names) + tuple(
            (n, "codegen") for n in backward_names
        )
        forced = compile_program(
            program,
            _mixed_options(enable_compilation_cache=False, mixed_assignment=assignment),
            graph=graph,
        )
        source = forced.generated.source
        for name in forward_names:
            assert f"def kernel_{name}(" in source
        assert "_seg_backward_0" in source
        assert "_seg_forward_" not in source

    def test_no_workload_default_keeps_traversal_on_interp(self, isolated_cache):
        program = build_program("rgat", in_dim=4, out_dim=4)
        # No graph → no workload → structural default assignment.
        result = compile_program(program, _mixed_options(enable_compilation_cache=False))
        module = result.generated
        assert isinstance(module, MixedGeneratedModule)
        for kernel in module.plan.forward_kernels:
            expected = ASSIGN_INTERP if kernel.category == "traversal" else ASSIGN_CODEGEN
            assert module.assignment[kernel.name] == expected

    def test_summary_surfaces_mixed_telemetry(self, isolated_cache):
        graph = _graph()
        module = compile_model("rgcn", graph, in_dim=4, out_dim=4, options=_mixed_options())
        info = module.summary()
        assert set(info["artifact_cache"]) == {"hits", "misses", "stores", "errors"}
        counts = info["mixed_assignment"]
        assert counts[ASSIGN_CODEGEN] + counts[ASSIGN_INTERP] == len(
            list(module.plan.forward_kernels) + list(module.plan.backward_kernels)
        )
        assert set(info["occupancy"]) == {"hits", "misses", "variants"}


# ----------------------------------------------------------------------
# Occupancy specialisation
# ----------------------------------------------------------------------
class TestOccupancySpecialisation:
    def test_rebind_hits_the_occupancy_memo(self, isolated_cache):
        graph = _sparse_graph()
        module = compile_model("rgat", graph, in_dim=4, out_dim=4, options=_mixed_options())
        generated = module.generated
        first = generated.specialise_for_occupancy(module.default_binding.ctx)
        stats_before = generated.occupancy_stats()
        second = generated.specialise_for_occupancy(module.default_binding.ctx)
        stats_after = generated.occupancy_stats()
        assert second is first
        assert stats_after["hits"] == stats_before["hits"] + 1
        assert stats_after["variants"] == stats_before["variants"]

    def test_variant_skips_empty_relations(self, isolated_cache):
        graph = _sparse_graph()
        module = compile_model("rgat", graph, in_dim=4, out_dim=4, options=_mixed_options())
        binding = module.bind(graph)
        variant = module.generated_for(binding.ctx)
        assert variant is not module.generated
        # The specialised source unrolls strictly fewer per-relation blocks
        # than the unspecialised module (2 of the 6 relations are empty).
        assert variant.source.count("if end > start:") < module.generated.source.count(
            "if end > start:"
        )

    def test_fully_occupied_small_schema_returns_self(self, isolated_cache):
        graph = _graph()
        module = compile_model("rgat", graph, in_dim=4, out_dim=4, options=_mixed_options())
        binding = module.bind(graph)
        assert module.generated_for(binding.ctx) is module.generated

    def test_specialised_results_bit_identical(self, isolated_cache):
        graph = _sparse_graph()
        rng = np.random.default_rng(7)
        features = rng.standard_normal((graph.num_nodes, 4))
        results = {}
        for backend in ("python-interp", "mixed"):
            module = compile_model(
                "rgat", graph, in_dim=4, out_dim=4,
                options=CompilerOptions(backend=backend, emit_backward=True), seed=3,
            )
            binding = module.bind(graph)
            out = binding.forward(features)
            binding.backward({k: np.ones_like(v) for k, v in out.items()})
            results[backend] = (
                {k: v.tobytes() for k, v in out.items()},
                {k: v.tobytes() for k, v in binding.input_gradients().items()},
                {n: p.grad.tobytes() for n, p in module.parameters_by_name.items()},
            )
        assert results["python-interp"] == results["mixed"]


# ----------------------------------------------------------------------
# Runtime-segment-loop backward (regression for the fresh-scatter fix)
# ----------------------------------------------------------------------
class TestRuntimeLoopBackward:
    def test_input_gradients_bit_identical_beyond_unroll_limit(self, isolated_cache):
        """>32 edge types force the runtime segment loop; scatters inside it
        must accumulate (np.add.at), not overwrite (_scatter_fresh)."""
        graph = random_hetero_graph(40, 300, 2, 40, seed=3)
        rng = np.random.default_rng(1)
        features = rng.standard_normal((graph.num_nodes, 4))
        grads = {}
        for backend in ("python-interp", "python-codegen", "mixed"):
            module = compile_model(
                "rgat", graph, in_dim=4, out_dim=4,
                options=CompilerOptions(backend=backend, emit_backward=True), seed=3,
            )
            binding = module.bind(graph)
            out = binding.forward(features)
            binding.backward({k: np.ones_like(v) for k, v in out.items()})
            grads[backend] = {k: v.tobytes() for k, v in binding.input_gradients().items()}
        assert grads["python-codegen"] == grads["python-interp"]
        assert grads["mixed"] == grads["python-interp"]


# ----------------------------------------------------------------------
# Beam search
# ----------------------------------------------------------------------
class TestBeamSearch:
    def _plan_and_workload(self):
        from repro.evaluation.workload import WorkloadSpec

        program = build_program("rgat", in_dim=4, out_dim=4)
        graph = _graph()
        result = compile_program(program, _mixed_options(), graph=graph)
        return result.plan, WorkloadSpec.from_graph(graph, in_dim=4, out_dim=4)

    def test_deterministic_and_covers_every_kernel(self):
        plan, workload = self._plan_and_workload()
        first = beam_search_assignment(plan, workload)
        second = beam_search_assignment(plan, workload)
        assert first == second
        names = {k.name for k in list(plan.forward_kernels) + list(plan.backward_kernels)}
        assert {name for name, _ in first} == names
        assert all(token in (ASSIGN_INTERP, ASSIGN_CODEGEN) for _, token in first)

    def test_gemm_kernels_always_assigned_codegen(self):
        plan, workload = self._plan_and_workload()
        assignment = dict(beam_search_assignment(plan, workload))
        for kernel in list(plan.forward_kernels) + list(plan.backward_kernels):
            if kernel.category == "gemm":
                assert assignment[kernel.name] == ASSIGN_CODEGEN

    def test_assignment_is_valid_compiler_options_input(self, isolated_cache):
        plan, workload = self._plan_and_workload()
        assignment = beam_search_assignment(plan, workload)
        options = _mixed_options(mixed_assignment=assignment)
        graph = _graph()
        module = compile_model("rgat", graph, in_dim=4, out_dim=4, options=options)
        rng = np.random.default_rng(2)
        out = module.forward(rng.standard_normal((graph.num_nodes, 4)))
        assert all(np.isfinite(v).all() for v in out.values())
