"""Tests of the tensor substrate's autograd engine against numerical gradients."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.tensor import Tensor, no_grad
from repro.tensor.tensor import concat, stack


def numerical_gradient(fn, array, index, eps=1e-6):
    """Central-difference derivative of ``fn`` w.r.t. ``array[index]``."""
    plus = array.copy()
    minus = array.copy()
    plus[index] += eps
    minus[index] -= eps
    return (fn(plus) - fn(minus)) / (2 * eps)


class TestBasicOps:
    def test_add_backward_broadcast(self):
        a = Tensor(np.random.randn(4, 3), requires_grad=True)
        b = Tensor(np.random.randn(3), requires_grad=True)
        (a + b).sum().backward()
        assert a.grad.shape == (4, 3)
        assert b.grad.shape == (3,)
        np.testing.assert_allclose(b.grad, np.full(3, 4.0))

    def test_mul_backward(self):
        a = Tensor(np.array([2.0, 3.0]), requires_grad=True)
        b = Tensor(np.array([4.0, 5.0]), requires_grad=True)
        (a * b).sum().backward()
        np.testing.assert_allclose(a.grad, [4.0, 5.0])
        np.testing.assert_allclose(b.grad, [2.0, 3.0])

    def test_div_backward(self):
        a = Tensor(np.array([2.0, 6.0]), requires_grad=True)
        b = Tensor(np.array([4.0, 3.0]), requires_grad=True)
        (a / b).sum().backward()
        np.testing.assert_allclose(a.grad, [0.25, 1.0 / 3.0])
        np.testing.assert_allclose(b.grad, [-2.0 / 16.0, -6.0 / 9.0])

    def test_matmul_gradient_matches_numerical(self):
        rng = np.random.default_rng(1)
        x = rng.standard_normal((5, 3))
        w = rng.standard_normal((3, 4))
        xt = Tensor(x, requires_grad=True)
        wt = Tensor(w, requires_grad=True)
        (xt @ wt).sum().backward()

        def loss_x(arr):
            return (arr @ w).sum()

        def loss_w(arr):
            return (x @ arr).sum()

        assert abs(numerical_gradient(loss_x, x, (1, 2)) - xt.grad[1, 2]) < 1e-5
        assert abs(numerical_gradient(loss_w, w, (2, 3)) - wt.grad[2, 3]) < 1e-5

    def test_relu_and_leaky_relu_gradients(self):
        x = Tensor(np.array([-2.0, 0.5, 3.0]), requires_grad=True)
        x.relu().sum().backward()
        np.testing.assert_allclose(x.grad, [0.0, 1.0, 1.0])
        y = Tensor(np.array([-2.0, 0.5, 3.0]), requires_grad=True)
        y.leaky_relu(0.1).sum().backward()
        np.testing.assert_allclose(y.grad, [0.1, 1.0, 1.0])

    def test_exp_log_roundtrip_gradient(self):
        x = Tensor(np.array([0.5, 1.5]), requires_grad=True)
        x.exp().log().sum().backward()
        np.testing.assert_allclose(x.grad, [1.0, 1.0], atol=1e-10)

    def test_pow_and_neg(self):
        x = Tensor(np.array([2.0, 3.0]), requires_grad=True)
        ((-x) ** 2).sum().backward()
        np.testing.assert_allclose(x.grad, [4.0, 6.0])

    def test_mean_gradient(self):
        x = Tensor(np.random.randn(4, 5), requires_grad=True)
        x.mean().backward()
        np.testing.assert_allclose(x.grad, np.full((4, 5), 1.0 / 20))

    def test_max_gradient_goes_to_argmax(self):
        x = Tensor(np.array([1.0, 5.0, 2.0]), requires_grad=True)
        x.max().backward()
        np.testing.assert_allclose(x.grad, [0.0, 1.0, 0.0])


class TestIndexingAndShape:
    def test_index_select_backward_accumulates_duplicates(self):
        x = Tensor(np.arange(6.0).reshape(3, 2), requires_grad=True)
        idx = np.array([0, 0, 2])
        x.index_select(idx).sum().backward()
        np.testing.assert_allclose(x.grad, [[2.0, 2.0], [0.0, 0.0], [1.0, 1.0]])

    def test_getitem_tuple_index(self):
        x = Tensor(np.arange(12.0).reshape(3, 4), requires_grad=True)
        rows = np.array([0, 1, 2])
        cols = np.array([1, 2, 3])
        x[(rows, cols)].sum().backward()
        expected = np.zeros((3, 4))
        expected[rows, cols] = 1.0
        np.testing.assert_allclose(x.grad, expected)

    def test_reshape_transpose_roundtrip(self):
        x = Tensor(np.random.randn(2, 6), requires_grad=True)
        y = x.reshape(3, 4).transpose()
        assert y.shape == (4, 3)
        y.sum().backward()
        np.testing.assert_allclose(x.grad, np.ones((2, 6)))

    def test_concat_backward_splits_gradient(self):
        a = Tensor(np.ones((2, 3)), requires_grad=True)
        b = Tensor(np.ones((4, 3)), requires_grad=True)
        concat([a, b], axis=0).sum().backward()
        assert a.grad.shape == (2, 3)
        assert b.grad.shape == (4, 3)

    def test_stack_backward(self):
        a = Tensor(np.ones(3), requires_grad=True)
        b = Tensor(np.ones(3), requires_grad=True)
        stack([a, b]).sum().backward()
        np.testing.assert_allclose(a.grad, np.ones(3))
        np.testing.assert_allclose(b.grad, np.ones(3))

    def test_unsqueeze_squeeze(self):
        x = Tensor(np.random.randn(3, 4), requires_grad=True)
        x.unsqueeze(1).squeeze(1).sum().backward()
        np.testing.assert_allclose(x.grad, np.ones((3, 4)))


class TestEngineBehaviour:
    def test_no_grad_disables_graph(self):
        x = Tensor(np.ones(3), requires_grad=True)
        with no_grad():
            y = x * 2
        assert y._backward is None

    def test_backward_requires_scalar_without_grad(self):
        x = Tensor(np.ones(3), requires_grad=True)
        with pytest.raises(ValueError):
            (x * 2).backward()

    def test_grad_accumulates_across_backward_calls(self):
        x = Tensor(np.ones(3), requires_grad=True)
        (x * 2).sum().backward()
        (x * 2).sum().backward()
        np.testing.assert_allclose(x.grad, np.full(3, 4.0))

    def test_detach_stops_gradient(self):
        x = Tensor(np.ones(3), requires_grad=True)
        (x.detach() * 3).sum()
        assert x.grad is None

    def test_shared_subexpression_gradient(self):
        x = Tensor(np.array([2.0]), requires_grad=True)
        y = x * x
        (y + y).sum().backward()
        np.testing.assert_allclose(x.grad, [8.0])

    @given(st.integers(min_value=1, max_value=6), st.integers(min_value=1, max_value=6))
    @settings(max_examples=20, deadline=None)
    def test_matmul_shapes_property(self, m, k):
        x = Tensor(np.random.randn(m, k), requires_grad=True)
        w = Tensor(np.random.randn(k, 3), requires_grad=True)
        out = x @ w
        assert out.shape == (m, 3)
        out.sum().backward()
        assert x.grad.shape == (m, k)
        assert w.grad.shape == (k, 3)
