"""Setup shim for environments without the `wheel` package (offline installs)."""
from setuptools import setup, find_packages

setup(
    name="repro",
    version="1.0.0",
    description=(
        "Reproduction of Hector: a two-level IR and code-generation framework "
        "for relational graph neural networks (ASPLOS 2024)"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    install_requires=["numpy>=1.24"],
)
