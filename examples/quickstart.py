"""Quickstart: compile an RGCN layer for a heterogeneous graph and run it.

Covers the core workflow of the Hector reproduction:

1. build (or load) a heterogeneous graph,
2. compile a model with chosen optimizations (compact materialization and
   linear operator reordering),
3. run forward and backward through the generated kernels,
4. inspect the generated artefacts (kernel plan, Python kernels, CUDA-like text).

Run with: ``python examples/quickstart.py``
"""

import numpy as np

from repro import CompilerOptions, compile_model
from repro.graph import random_hetero_graph

IN_DIM = OUT_DIM = 32


def main() -> None:
    # A small citation-style heterogeneous graph: 3 node types, 8 relations.
    graph = random_hetero_graph(
        num_nodes=500, num_edges=4000, num_node_types=3, num_edge_types=8,
        seed=0, name="quickstart",
    )
    print(f"graph: {graph}")
    print(f"entity compaction ratio: {graph.entity_compaction_ratio:.2f}")

    options = CompilerOptions(compact_materialization=True, linear_operator_reordering=True)
    module = compile_model("rgcn", graph, in_dim=IN_DIM, out_dim=OUT_DIM, options=options, seed=1)
    print(f"\ncompiled plan: {module.plan.summary()}")

    features = np.random.default_rng(0).standard_normal((graph.num_nodes, IN_DIM))
    outputs = module.forward(features)
    h_out = outputs["h_out"]
    print(f"\nforward output shape: {h_out.shape}, mean activation {h_out.mean():.4f}")

    # Backward through the generated (paired) backward kernels.
    module.backward({"h_out": np.ones_like(h_out) / h_out.size})
    grad_norms = {name: float(np.linalg.norm(p.grad)) for name, p in module.parameters_by_name.items()}
    print(f"parameter gradient norms: { {k: round(v, 4) for k, v in grad_norms.items()} }")

    # Inspect the generated kernels.
    print("\nfirst 25 lines of the generated Python kernels:")
    print("\n".join(module.generated_source().splitlines()[:25]))


if __name__ == "__main__":
    main()
