"""Compare Hector against the baseline systems on a knowledge-graph HGT workload.

Reproduces a slice of Figure 8 interactively: HGT and RGAT inference and
training on the fb15k and biokg knowledge graphs (full-scale statistics from
Table 3), evaluated for DGL, PyG, Seastar, Graphiler, HGL, and Hector under
its four optimization configurations.  Also verifies, on a scaled
instantiation, that the compiled kernels produce the same numbers as the
reference implementation.

Run with: ``python examples/compare_systems_hgt_kg.py``
"""

import numpy as np

from repro import CompilerOptions, compile_model
from repro.evaluation import run_end_to_end
from repro.evaluation.reporting import format_table
from repro.graph import load_dataset
from repro.models import REFERENCE_CLASSES

DIM = 64


def correctness_check() -> None:
    """The generated kernels agree with the reference model on a scaled graph."""
    graph = load_dataset("fb15k", max_edges=4000)
    features = np.random.default_rng(0).standard_normal((graph.num_nodes, 16))
    module = compile_model(
        "hgt", graph, in_dim=16, out_dim=16,
        options=CompilerOptions(compact_materialization=True, linear_operator_reordering=True),
    )
    reference = REFERENCE_CLASSES["hgt"](graph, 16, 16)
    reference.load_parameters({k: p.data for k, p in module.parameters_by_name.items()})
    compiled_out = module.forward(features)["h_out"]
    reference_out = reference.forward(features)["h_out"].data
    error = np.abs(compiled_out - reference_out).max()
    print(f"correctness check on scaled fb15k: max |compiled - reference| = {error:.2e}")


def main() -> None:
    correctness_check()
    for model in ("hgt", "rgat"):
        for dataset in ("fb15k", "biokg"):
            for training in (False, True):
                cell = run_end_to_end(
                    model, dataset, training=training,
                    hector_configs=("U", "C", "R", "C+R"), in_dim=DIM, out_dim=DIM,
                )
                mode = "training" if training else "inference"
                print()
                print(format_table(
                    cell.as_rows(),
                    columns=["system", "time_ms", "status", "memory_gib"],
                    title=f"{model.upper()} {mode} on {dataset} (full-scale workload)",
                ))
                best = cell.hector_speedup("best")
                if best is not None:
                    print(f"Hector (best config) speed-up over best baseline: {best:.2f}x")


if __name__ == "__main__":
    main()
