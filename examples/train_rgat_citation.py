"""Train a single-head RGAT layer on a synthetic citation knowledge graph.

Mirrors the paper's training methodology (Section 4.1): full-graph training
with a negative log-likelihood loss against random labels, running entirely
through Hector's generated forward and backward kernels, with SGD updates on
the typed weights.  Also prints the optimization effect of compaction +
reordering on the compiled plan.

Run with: ``python examples/train_rgat_citation.py``
"""

import numpy as np

from repro import CompilerOptions, compile_model
from repro.graph import load_dataset
from repro.graph.generators import random_labels
from repro.tensor import optim

DIM = 32
NUM_CLASSES = DIM  # the layer output doubles as class logits
EPOCHS = 20


def softmax_cross_entropy(logits: np.ndarray, labels: np.ndarray):
    """Loss value and gradient of mean cross-entropy over all nodes."""
    shifted = logits - logits.max(axis=1, keepdims=True)
    log_probs = shifted - np.log(np.exp(shifted).sum(axis=1, keepdims=True))
    n = logits.shape[0]
    loss = -log_probs[np.arange(n), labels].mean()
    grad = np.exp(log_probs)
    grad[np.arange(n), labels] -= 1.0
    return loss, grad / n


def main() -> None:
    # A scaled instantiation of the aifb citation dataset (Table 3 structure).
    graph = load_dataset("aifb", max_edges=6000)
    print(f"graph: {graph}")

    for label, options in (
        ("unoptimised", CompilerOptions()),
        ("compaction + reordering", CompilerOptions(compact_materialization=True,
                                                    linear_operator_reordering=True)),
    ):
        module = compile_model("rgat", graph, in_dim=DIM, out_dim=DIM, options=options, seed=0)
        summary = module.plan.summary()
        print(f"\n[{label}] kernels: {summary['num_gemm_kernels']} GEMM, "
              f"{summary['num_traversal_kernels']} traversal, {summary['num_fallback_kernels']} fallback")

    module = compile_model(
        "rgat", graph, in_dim=DIM, out_dim=DIM,
        options=CompilerOptions(compact_materialization=True, linear_operator_reordering=True), seed=0,
    )
    features = np.random.default_rng(0).standard_normal((graph.num_nodes, DIM))
    labels = random_labels(graph, NUM_CLASSES, seed=1)
    optimizer = optim.Adam(module.parameters(), lr=0.01)

    print("\ntraining:")
    for epoch in range(EPOCHS):
        optimizer.zero_grad()
        module.zero_grad()
        logits = module.forward(features)["out"]
        loss, grad = softmax_cross_entropy(logits, labels)
        module.backward({"out": grad})
        optimizer.step()
        if epoch % 5 == 0 or epoch == EPOCHS - 1:
            accuracy = (logits.argmax(axis=1) == labels).mean()
            print(f"  epoch {epoch:3d}  loss {loss:.4f}  train accuracy {accuracy:.3f}")


if __name__ == "__main__":
    main()
