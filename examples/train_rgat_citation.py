"""Train a single-head RGAT layer on a synthetic citation knowledge graph.

Mirrors the paper's training methodology (Section 4.1) — cross-entropy
against random labels, running entirely through Hector's generated forward
and backward kernels — but drives it through the :mod:`repro.train`
minibatch trainer:

* a **full-graph** run (unbounded fanout, one accumulation window per
  epoch): exactly classic full-graph training, via the same code path;
* a **sampled-minibatch** run (fanout-capped blocks, one optimizer step per
  minibatch): the production regime, resampling fresh neighborhoods every
  epoch.

Also prints the optimization effect of compaction + reordering on the
compiled plan.  Run with: ``python examples/train_rgat_citation.py``
"""

from repro import CompilerOptions, compile_model
from repro.graph import load_dataset
from repro.graph.generators import random_features, random_labels
from repro.train import MinibatchTrainer

DIM = 32
NUM_CLASSES = DIM  # the layer output doubles as class logits
EPOCHS = 20


def main() -> None:
    # A scaled instantiation of the aifb citation dataset (Table 3 structure).
    graph = load_dataset("aifb", max_edges=6000)
    print(f"graph: {graph}")

    for label, options in (
        ("unoptimised", CompilerOptions()),
        ("compaction + reordering", CompilerOptions(compact_materialization=True,
                                                    linear_operator_reordering=True)),
    ):
        module = compile_model("rgat", graph, in_dim=DIM, out_dim=DIM, options=options, seed=0)
        summary = module.plan.summary()
        print(f"\n[{label}] kernels: {summary['num_gemm_kernels']} GEMM, "
              f"{summary['num_traversal_kernels']} traversal, {summary['num_fallback_kernels']} fallback")

    options = CompilerOptions(compact_materialization=True, linear_operator_reordering=True)
    features = random_features(graph, DIM, seed=0)
    labels = random_labels(graph, NUM_CLASSES, seed=1)

    for mode, trainer_kwargs in (
        # One window covering the whole graph per epoch == full-graph training.
        ("full-graph", dict(batch_size=None, accumulation_steps=None, fanouts=(None,))),
        # Production regime: fanout-capped blocks, one step per minibatch,
        # fresh neighborhoods every epoch (the sampler resamples per epoch).
        ("minibatch (batch=64, fanout=8)", dict(batch_size=64, accumulation_steps=1, fanouts=(8,))),
    ):
        module = compile_model("rgat", graph, in_dim=DIM, out_dim=DIM, options=options, seed=0)
        trainer = MinibatchTrainer(
            module, graph, features, labels,
            objective="cross_entropy", optimizer="adam", lr=0.01,
            **trainer_kwargs,
        )
        print(f"\ntraining [{mode}]:")
        for epoch in range(EPOCHS):
            record = trainer.epoch()
            if epoch % 5 == 0 or epoch == EPOCHS - 1:
                print(f"  epoch {epoch:3d}  loss {record.loss:.4f}  "
                      f"{record.num_minibatches} minibatches, {record.num_steps} steps, "
                      f"{record.seeds_per_second:,.0f} seeds/s")
        summary = trainer.summary()
        print(f"  summary: final loss {summary['final_loss']:.4f}, "
              f"sampler hit rate {summary['sampler_hit_rate']}, "
              f"arena hit rate {summary['arena_hit_rate']}")


if __name__ == "__main__":
    main()
