"""Walk through Hector's compilation pipeline for an HGT layer.

Shows every stage of Figure 5: the inter-operator level IR built from the
model definition, the effect of linear operator reordering and compact
materialization on that IR, the lowered kernel plan (GEMM and traversal
template instances with their access schemes and schedules), and the three
generated artefacts (Python kernels, CUDA-like kernels, host code).

Run with: ``python examples/inspect_ir_and_codegen.py``
"""

from repro.frontend import CompilerOptions, compile_program
from repro.ir.inter_op.passes import default_pipeline
from repro.models import build_program


def main() -> None:
    program = build_program("hgt", in_dim=64, out_dim=64)
    print("=" * 70)
    print("Inter-operator level IR (as written by the model author):")
    print("=" * 70)
    print(program.dump())

    optimized = default_pipeline(enable_compaction=True, enable_reordering=True).run(program)
    print()
    print("=" * 70)
    print("After linear operator reordering + compact materialization + DCE:")
    print("=" * 70)
    print(optimized.dump())
    print(f"\ncompacted values: {optimized.metadata['compacted_values']}")
    print(f"reordered operators: {optimized.metadata['reordered_operators']}")

    result = compile_program(
        program,
        CompilerOptions(compact_materialization=True, linear_operator_reordering=True),
    )
    print()
    print("=" * 70)
    print("Lowered kernel plan (intra-operator level):")
    print("=" * 70)
    print(result.plan.dump())

    counts = result.generated_line_counts()
    print()
    print("=" * 70)
    print("Generated artefacts:")
    print("=" * 70)
    print(f"  Python kernels : {counts['python_kernels']} lines")
    print(f"  CUDA-like code : {counts['cuda_kernels']} lines")
    print(f"  host/C++ code  : {counts['host_code']} lines")
    print(f"  from an input model of {counts['input_program']} operator/parameter lines")

    print("\nExcerpt of the generated CUDA-like GEMM kernel:")
    cuda = result.cuda_source().splitlines()
    start = next(i for i, line in enumerate(cuda) if "GEMM template instance" in line)
    print("\n".join(cuda[start:start + 30]))


if __name__ == "__main__":
    main()
